//! The parallel experiment-campaign layer.
//!
//! A [`CampaignSpec`] declares a full experiment matrix — every
//! `(core, preset, workload)` run a figure needs, including kernel-builder
//! customisations and platform overrides — and [`CampaignSpec::run`] fans
//! the runs out across `std::thread` workers with a shared atomic work
//! index (work stealing without any external dependency: each worker
//! claims the next undone index). Every [`System`] is self-contained, so
//! runs parallelise perfectly; outcomes are placed back by spec index, so
//! the aggregated [`Campaign`] — and the JSON artifact it renders — is
//! byte-identical regardless of worker count or completion order.
//!
//! The figure binaries (`fig9`, `ablations`, `extension_sync`,
//! `fig12_scaling`, `wcet_table`) are thin declarations over this layer:
//! they build a spec, run it, derive their human-readable tables from the
//! in-memory outcomes, and write the machine-readable campaign artifact to
//! `results/<name>.json` via [`Campaign::write_json`].

use crate::json::Json;
use crate::runner;
use crate::workloads::{self, Workload};
use freertos_lite::{GuestImage, KernelError};
use rtosunit::cv32rt::Cv32rtStats;
use rtosunit::hist::{LatencyHistogram, SloCounter};
use rtosunit::layout::{DMEM_BASE, IMEM_BASE};
use rtosunit::waterfall::{self, EpisodeWaterfall};
use rtosunit::{
    BusMasterStats, LatencyStats, Preset, SmpSystem, SwitchMetrics, SwitchRecord, System,
    TraceMark, UnitStats,
};
use rvsim_cores::{CoreCounters, CoreKind};
use rvsim_isa::csr;
use rvsim_snapshot as snap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a run's raw switch episodes are reduced to measured latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterPolicy {
    /// The runner's standard filtering: skip
    /// [`WARMUP_SWITCHES`](runner::WARMUP_SWITCHES) cold switches, then
    /// drop critical-section-delayed episodes via
    /// [`entry_threshold`](runner::entry_threshold).
    #[default]
    Standard,
    /// Only skip the warm-up switches.
    WarmupOnly,
    /// Skip the warm-up switches, then keep only timer-tick episodes.
    WarmupTimerTicks,
    /// Keep every episode.
    All,
}

impl FilterPolicy {
    fn apply(self, core: CoreKind, records: &[SwitchRecord]) -> Vec<SwitchRecord> {
        match self {
            FilterPolicy::Standard => runner::filter_episodes(core, records),
            FilterPolicy::WarmupOnly => records
                .iter()
                .skip(runner::WARMUP_SWITCHES)
                .copied()
                .collect(),
            FilterPolicy::WarmupTimerTicks => records
                .iter()
                .skip(runner::WARMUP_SWITCHES)
                .filter(|r| r.cause == csr::CAUSE_TIMER)
                .copied()
                .collect(),
            FilterPolicy::All => records.to_vec(),
        }
    }

    fn label(self) -> &'static str {
        match self {
            FilterPolicy::Standard => "standard",
            FilterPolicy::WarmupOnly => "warmup_only",
            FilterPolicy::WarmupTimerTicks => "warmup_timer_ticks",
            FilterPolicy::All => "all",
        }
    }
}

/// A pre-boot platform/system reconfiguration (the ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigOverride {
    /// ctxQueue depth (paper §5.3); only meaningful on LSU-arbitrated
    /// cores.
    CtxQueueDepth(usize),
    /// Arbitration level (§5): `true` = LSU (share cache), `false` = bus.
    UnitArbitration(bool),
    /// Hardware scheduler list capacity; applied only when the preset has
    /// hardware scheduling.
    UnitListLen(usize),
    /// Timer-tick period in cycles.
    TimerPeriod(u32),
}

impl ConfigOverride {
    fn apply(self, sys: &mut System) {
        match self {
            ConfigOverride::CtxQueueDepth(d) => sys.platform.set_ctx_queue_depth(d),
            ConfigOverride::UnitArbitration(shares) => sys.platform.set_unit_arbitration(shares),
            ConfigOverride::UnitListLen(len) => {
                if sys.preset().has_sched() {
                    sys.set_unit_list_len(len);
                }
            }
            ConfigOverride::TimerPeriod(p) => sys.set_timer_period(p),
        }
    }

    fn to_json(self) -> Json {
        match self {
            ConfigOverride::CtxQueueDepth(d) => Json::object().with("ctx_queue_depth", d),
            ConfigOverride::UnitArbitration(s) => Json::object().with("unit_shares_cache", s),
            ConfigOverride::UnitListLen(l) => Json::object().with("unit_list_len", l),
            ConfigOverride::TimerPeriod(p) => Json::object().with("timer_period", p),
        }
    }
}

/// The workload a [`RunSpec`] executes.
#[derive(Debug, Clone, Copy)]
pub enum WorkloadSpec {
    /// One of the suite workloads ([`workloads::ALL`]).
    Suite(Workload),
    /// A custom guest kernel built by a function of `(param, preset)` —
    /// plain `fn` pointers so specs stay `Send + Sync` for the executor.
    Custom {
        /// Display name.
        name: &'static str,
        /// Free parameter forwarded to `build` (e.g. a task count).
        param: u32,
        /// Kernel builder.
        build: fn(u32, Preset) -> Result<GuestImage, KernelError>,
        /// Cycle budget for the run.
        run_cycles: u64,
        /// Interval of injected external interrupts (0 = none).
        ext_irq_interval: u64,
    },
    /// A custom guest kernel driven by an *open-loop* external-interrupt
    /// arrival process: instead of a fixed interval, `arrivals` computes
    /// the full list of injection cycles from `(param, run_cycles)` —
    /// bursty/Markov-modulated tail-latency workloads (ROADMAP item 4).
    /// Arrivals land whether or not the guest has caught up, so queueing
    /// delay shows up in the measured latencies.
    OpenLoop {
        /// Display name.
        name: &'static str,
        /// Free parameter forwarded to `build` and `arrivals` (e.g. the
        /// mean inter-arrival time).
        param: u32,
        /// Kernel builder.
        build: fn(u32, Preset) -> Result<GuestImage, KernelError>,
        /// Cycle budget for the run.
        run_cycles: u64,
        /// Arrival-cycle generator — a plain `fn` pointer, so specs stay
        /// `Send + Sync`; determinism is the generator's contract.
        arrivals: fn(u32, u64) -> Vec<u64>,
    },
    /// A closed-form model evaluation (no simulation) — area scaling,
    /// WCET analysis. The result lands in [`RunOutcome::analytic`].
    Analytic {
        /// Display name.
        name: &'static str,
        /// Free parameter forwarded to `eval` (e.g. a list length).
        param: u32,
        /// Model evaluator.
        eval: fn(u32, CoreKind, Preset) -> Json,
    },
}

impl WorkloadSpec {
    /// The workload's display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Suite(w) => w.name,
            WorkloadSpec::Custom { name, .. }
            | WorkloadSpec::OpenLoop { name, .. }
            | WorkloadSpec::Analytic { name, .. } => name,
        }
    }

    fn param(&self) -> u32 {
        match self {
            WorkloadSpec::Suite(_) => 0,
            WorkloadSpec::Custom { param, .. }
            | WorkloadSpec::OpenLoop { param, .. }
            | WorkloadSpec::Analytic { param, .. } => *param,
        }
    }
}

/// A shared post-boot machine snapshot: the boot prefix of a
/// configuration cell, simulated once and forked by every run that
/// starts from it. Cheap to clone (the parsed state sits behind an
/// `Arc`), and `Send + Sync` so warm runs still fan out across workers.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Unsealed [`System`] state payload (digest already verified).
    state: Arc<Json>,
    /// Cycles the snapshot has already simulated — the boot prefix a
    /// warm-started run no longer pays.
    boot_cycles: u64,
}

impl WarmStart {
    /// The boot-prefix length this warm start eliminates, in cycles.
    pub fn boot_cycles(&self) -> u64 {
        self.boot_cycles
    }
}

/// One run of the experiment matrix.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Explicit label; defaults to `core/preset/workload[@param]`.
    pub label: Option<String>,
    /// Core model.
    pub core: CoreKind,
    /// Unit configuration.
    pub preset: Preset,
    /// What to execute.
    pub workload: WorkloadSpec,
    /// Pre-boot reconfigurations, applied in order before the image
    /// installs.
    pub overrides: Vec<ConfigOverride>,
    /// Episode filtering for the measured latencies.
    pub filter: FilterPolicy,
    /// Use the cycle-by-cycle reference loop instead of batched stepping
    /// (differential testing and throughput baselines).
    pub stepwise: bool,
    /// Attach the basic-block translation cache to the core for batched
    /// runs. Bit-identical simulated timing and artifacts — this only
    /// accelerates host execution (the `fig9_blockcache` bench axis).
    /// Inert for stepwise and SMP runs, which step per-cycle.
    pub blocks: bool,
    /// Per-run SLO latency budget in cycles; falls back to the campaign's
    /// [`CampaignSpec::slo`] when `None`. Misses are counted exactly at
    /// harvest time and reported in the v3 telemetry artifact.
    pub slo: Option<u64>,
    /// Hart count. 1 (the default) runs the classic single-core
    /// [`System`]; ≥ 2 runs an [`SmpSystem`] with the measured image on
    /// hart 0 and memory-pounding contention workers on the others, so
    /// the measured latencies include shared-bus arbitration delay.
    pub harts: usize,
    /// Warm-start handle: restore this post-boot snapshot instead of
    /// booting from cycle 0, then run only the remaining budget. The
    /// round-trip contract makes the artifact byte-identical to a cold
    /// boot. Built with [`RunSpec::boot_snapshot`] +
    /// [`RunSpec::from_snapshot`].
    pub warm: Option<WarmStart>,
}

impl RunSpec {
    /// A standard run: no overrides, standard filtering, batched stepping.
    pub fn new(core: CoreKind, preset: Preset, workload: WorkloadSpec) -> RunSpec {
        RunSpec {
            label: None,
            core,
            preset,
            workload,
            overrides: Vec::new(),
            filter: FilterPolicy::Standard,
            stepwise: false,
            blocks: false,
            slo: None,
            harts: 1,
            warm: None,
        }
    }

    /// Boots this run's system — overrides applied, image installed, no
    /// external interrupts scheduled yet — for `boot_cycles` cycles and
    /// returns the sealed snapshot document. Fork it into warm-started
    /// runs with [`from_snapshot`](Self::from_snapshot).
    ///
    /// # Errors
    ///
    /// Fails for analytic or SMP specs, on kernel build errors, or when
    /// the guest halts inside the boot prefix.
    pub fn boot_snapshot(&self, boot_cycles: u64) -> Result<Json, String> {
        if self.harts > 1 {
            return Err("warm start is single-hart only".into());
        }
        let image = match self.workload {
            WorkloadSpec::Analytic { .. } => {
                return Err("analytic runs have nothing to boot".into())
            }
            WorkloadSpec::Suite(w) => workloads::build(&w, self.preset),
            WorkloadSpec::Custom { param, build, .. }
            | WorkloadSpec::OpenLoop { param, build, .. } => build(param, self.preset),
        }
        .map_err(|e| format!("workload failed to build: {e:?}"))?;
        let mut sys = System::new(self.core, self.preset);
        for o in &self.overrides {
            o.apply(&mut sys);
        }
        if self.blocks {
            sys.set_block_cache(true);
        }
        image.install(&mut sys);
        if self.stepwise {
            sys.run_stepwise(boot_cycles);
        } else {
            sys.run(boot_cycles);
        }
        if sys.halted() {
            return Err(format!(
                "guest halted inside the {boot_cycles}-cycle boot prefix"
            ));
        }
        Ok(sys.snapshot())
    }

    /// Derives a warm-started copy of this spec from a sealed post-boot
    /// snapshot document (see [`boot_snapshot`](Self::boot_snapshot)).
    /// The boot-prefix length is read from the snapshot itself.
    ///
    /// # Errors
    ///
    /// Fails on a broken envelope or when the snapshot describes a
    /// different core kind or preset than this spec.
    pub fn from_snapshot(mut self, doc: &Json) -> Result<RunSpec, String> {
        let state = snap::open(&doc.render()).map_err(|e| e.to_string())?;
        let kind = snap::get_str(&state, "kind").map_err(|e| e.to_string())?;
        if kind != self.core.name() {
            return Err(format!(
                "snapshot is for core `{kind}`, spec wants `{}`",
                self.core.name()
            ));
        }
        let preset = snap::get_str(&state, "preset").map_err(|e| e.to_string())?;
        if preset != self.preset.tag() {
            return Err(format!(
                "snapshot is for preset `{preset}`, spec wants `{}`",
                self.preset.tag()
            ));
        }
        let platform = snap::field(&state, "platform").map_err(|e| e.to_string())?;
        let boot_cycles = snap::get_u64(platform, "cycle").map_err(|e| e.to_string())?;
        self.warm = Some(WarmStart {
            state: Arc::new(state),
            boot_cycles,
        });
        Ok(self)
    }

    /// Attaches the block translation cache for this run and returns
    /// `self` (host-side speedup only; simulated results are unchanged).
    pub fn with_blocks(mut self) -> RunSpec {
        self.blocks = true;
        self
    }

    /// Sets the hart count (SMP contention axis) and returns `self`.
    pub fn with_harts(mut self, harts: usize) -> RunSpec {
        assert!(harts >= 1, "a run needs at least one hart");
        self.harts = harts;
        self
    }

    /// Sets this run's SLO latency budget (cycles) and returns `self`.
    pub fn with_slo(mut self, threshold: u64) -> RunSpec {
        self.slo = Some(threshold);
        self
    }

    /// The effective label of this run.
    pub fn label(&self) -> String {
        if let Some(l) = &self.label {
            return l.clone();
        }
        let mut l = format!(
            "{}/{}/{}",
            self.core.name(),
            self.preset.label(),
            self.workload.name()
        );
        if self.workload.param() != 0 {
            l.push_str(&format!("@{}", self.workload.param()));
        }
        if self.harts != 1 {
            l.push_str(&format!("/{}harts", self.harts));
        }
        l
    }
}

/// Simulation measurements of one run (absent for analytic runs).
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Every completed switch episode, unfiltered.
    pub raw_records: Vec<SwitchRecord>,
    /// Episodes after the spec's [`FilterPolicy`].
    pub records: Vec<SwitchRecord>,
    /// Latencies of the filtered episodes, in cycles.
    pub latencies: Vec<u64>,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// RTOSUnit activity counters, if a unit was attached.
    pub unit: Option<UnitStats>,
    /// CV32RT activity counters, if the comparison unit was attached.
    pub cv32rt: Option<Cv32rtStats>,
    /// Data-port occupancy `(total, core, unit)` cycles.
    pub port: (u64, u64, u64),
    /// Typed guest TRACE writes (benchmark and kernel phase marks).
    pub trace_marks: Vec<TraceMark>,
    /// `(issued, full-stall)` ctxQueue counters, if present.
    pub ctx_queue: Option<(u64, u64)>,
    /// Core activity counters (stall causes, decode cache, pairing).
    pub counters: CoreCounters,
    /// Latency waterfall of the filtered episodes (phase widths come from
    /// kernel phase marks when the workload emits them).
    pub waterfall: Vec<EpisodeWaterfall>,
    /// Streaming latency/phase histograms with optional exact SLO
    /// accounting, built over `waterfall` at harvest time. Emitted in the
    /// v3 telemetry artifact; mergeable across runs for the campaign
    /// aggregate.
    pub metrics: SwitchMetrics,
    /// Per-hart shared-bus statistics (index = hart id); present only for
    /// SMP runs (`harts > 1`).
    pub bus: Option<Vec<BusMasterStats>>,
}

impl SimOutcome {
    /// Latency statistics of the filtered episodes.
    pub fn stats(&self) -> Option<LatencyStats> {
        LatencyStats::from_latencies(&self.latencies)
    }
}

/// The result of one executed [`RunSpec`], in spec order.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Index into [`CampaignSpec::runs`].
    pub index: usize,
    /// Effective label.
    pub label: String,
    /// Core model.
    pub core: CoreKind,
    /// Unit configuration.
    pub preset: Preset,
    /// Workload name.
    pub workload: &'static str,
    /// Workload parameter (0 when unused).
    pub param: u32,
    /// Hart count the run executed on (1 = classic single-core path).
    pub harts: usize,
    /// Simulation measurements (None for analytic runs).
    pub sim: Option<SimOutcome>,
    /// Analytic model output (None for simulated runs).
    pub analytic: Option<Json>,
    /// Host wall-clock time of this run, nanoseconds. Excluded from the
    /// deterministic v1 JSON artifact; emitted with campaign telemetry.
    pub host_nanos: u64,
}

impl RunOutcome {
    /// Latency statistics, if this run simulated and measured switches.
    pub fn stats(&self) -> Option<LatencyStats> {
        self.sim.as_ref().and_then(SimOutcome::stats)
    }
}

/// A declarative experiment matrix. Build with [`CampaignSpec::new`] /
/// [`CampaignSpec::matrix`], then execute with [`CampaignSpec::run`].
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name — also the `results/<name>.json` artifact stem.
    pub name: &'static str,
    /// The runs, executed in any order, aggregated in this order.
    pub runs: Vec<RunSpec>,
    /// Emit extended telemetry in the artifact (schema v3): per-run host
    /// wall-time, core counters, waterfall summaries, latency histograms
    /// with percentiles and SLO accounting, plus a campaign-wide
    /// aggregate. Off by default — standard artifacts stay byte-identical
    /// to the v1 schema.
    pub telemetry: bool,
    /// Campaign-wide SLO latency budget (cycles), used by every run that
    /// does not set its own [`RunSpec::slo`].
    pub slo: Option<u64>,
    /// Print a live progress line to stderr while the campaign runs.
    pub progress: bool,
    /// Per-run host wall-time watchdog. When set, simulation proceeds in
    /// chunks (cycle-exact with the unchunked run) and a run that blows
    /// the budget fails as [`FailureKind::TimedOut`] instead of hanging
    /// the whole campaign on one runaway guest.
    pub wall_limit: Option<Duration>,
    /// How many times a panicked or timed-out run is retried (with a
    /// short exponential backoff) before its failure is recorded. Build
    /// failures are deterministic and never retried.
    pub retries: u32,
    /// Directory to write one replayable JSON artifact per failed run
    /// into (`<campaign>_run<index>.json`). `None` disables quarantine.
    pub quarantine: Option<std::path::PathBuf>,
}

impl CampaignSpec {
    /// An empty campaign.
    pub fn new(name: &'static str) -> CampaignSpec {
        CampaignSpec {
            name,
            runs: Vec::new(),
            telemetry: false,
            slo: None,
            progress: false,
            wall_limit: None,
            retries: 1,
            quarantine: None,
        }
    }

    /// Sets the per-run host wall-time watchdog.
    pub fn with_wall_limit(mut self, limit: Duration) -> CampaignSpec {
        self.wall_limit = Some(limit);
        self
    }

    /// Sets the retry budget for panicked / timed-out runs.
    pub fn with_retries(mut self, retries: u32) -> CampaignSpec {
        self.retries = retries;
        self
    }

    /// Enables quarantine artifacts for failed runs under `dir`.
    pub fn with_quarantine(mut self, dir: impl Into<std::path::PathBuf>) -> CampaignSpec {
        self.quarantine = Some(dir.into());
        self
    }

    /// Enables extended artifact telemetry (schema v3).
    pub fn with_telemetry(mut self) -> CampaignSpec {
        self.telemetry = true;
        self
    }

    /// Sets the campaign-wide SLO latency budget (cycles).
    pub fn with_slo(mut self, threshold: u64) -> CampaignSpec {
        self.slo = Some(threshold);
        self
    }

    /// Enables the live stderr progress line.
    pub fn with_progress(mut self) -> CampaignSpec {
        self.progress = true;
        self
    }

    /// The full `cores × presets × workloads` cross product with standard
    /// settings (the Fig. 9 shape).
    pub fn matrix(
        name: &'static str,
        cores: &[CoreKind],
        presets: &[Preset],
        suite: &[Workload],
    ) -> CampaignSpec {
        let mut spec = CampaignSpec::new(name);
        for &core in cores {
            for &preset in presets {
                for &w in suite {
                    spec.runs
                        .push(RunSpec::new(core, preset, WorkloadSpec::Suite(w)));
                }
            }
        }
        spec
    }

    /// Adds a run and returns `self` for chaining.
    pub fn with(mut self, run: RunSpec) -> CampaignSpec {
        self.runs.push(run);
        self
    }

    /// Executes every run across `workers` threads (clamped to the run
    /// count; 1 = sequential). Outcomes are aggregated in spec order, so
    /// the result — including its JSON rendering — is identical for every
    /// worker count.
    ///
    /// The executor is crash-tolerant: every run executes under
    /// `catch_unwind`, so one panicking or runaway run costs exactly its
    /// own result. The campaign always completes, carrying partial
    /// results plus a [`Campaign::failures`] report (and, with
    /// [`with_quarantine`](Self::with_quarantine), one replayable JSON
    /// artifact per failure).
    pub fn run(&self, workers: usize) -> Campaign {
        let started = Instant::now();
        let n = self.runs.len();
        let workers = workers.clamp(1, n.max(1));
        let mut slots: Vec<Option<Result<RunOutcome, RunFailure>>> = (0..n).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel();
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let runs = &self.runs;
                let default_slo = self.slo;
                let wall_limit = self.wall_limit;
                let retries = self.retries;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= runs.len() {
                        break;
                    }
                    let result =
                        execute_with_recovery(i, &runs[i], default_slo, wall_limit, retries);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut done = 0usize;
            for (i, result) in rx {
                done += 1;
                if self.progress {
                    let label = match &result {
                        Ok(o) => o.label.clone(),
                        Err(f) => format!("{} FAILED ({})", f.label, f.kind.name()),
                    };
                    progress_line(self.name, done, n, &label);
                }
                slots[i] = Some(result);
            }
            if self.progress {
                finish_progress();
            }
        });
        let mut outcomes = Vec::with_capacity(n);
        let mut failures = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(o)) => outcomes.push(o),
                Some(Err(f)) => failures.push(f),
                // Defensive: a worker died between claiming the index and
                // delivering — the run is reported lost, not the campaign.
                None => failures.push(RunFailure {
                    index: i,
                    label: self.runs[i].label(),
                    kind: FailureKind::Lost,
                    detail: "worker terminated without delivering this run".to_string(),
                    attempts: 0,
                }),
            }
        }
        if let Some(dir) = &self.quarantine {
            for f in &failures {
                quarantine_failure(dir, self.name, self, f);
            }
        }
        Campaign {
            name: self.name,
            workers,
            telemetry: self.telemetry,
            outcomes,
            failures,
            host_nanos: started.elapsed().as_nanos() as u64,
            sections: Vec::new(),
        }
    }
}

/// Why one campaign run produced no outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The guest kernel failed to build (deterministic — never retried).
    Build,
    /// The simulation panicked; caught by the worker's `catch_unwind`.
    Panicked,
    /// The per-run wall-time watchdog expired (runaway guest).
    TimedOut,
    /// A worker died without delivering the claimed run.
    Lost,
}

impl FailureKind {
    /// Stable short name (artifacts, progress lines).
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Build => "build",
            FailureKind::Panicked => "panicked",
            FailureKind::TimedOut => "timed_out",
            FailureKind::Lost => "lost",
        }
    }
}

/// One failed run: everything needed to report and replay it.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// Index into [`CampaignSpec::runs`].
    pub index: usize,
    /// Effective label of the failed run.
    pub label: String,
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable detail (panic message, timeout report, builder
    /// error).
    pub detail: String,
    /// Execution attempts made (1 = failed first try, no retries left).
    pub attempts: u32,
}

impl RunFailure {
    /// Renders the failure for the artifact's `failures` section.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("index", self.index)
            .with("label", self.label.as_str())
            .with("kind", self.kind.name())
            .with("detail", self.detail.as_str())
            .with("attempts", u64::from(self.attempts))
    }
}

/// Executes one run with panic isolation and bounded retry: panics and
/// timeouts retry up to `retries` times with a short exponential
/// backoff (transient host conditions — memory pressure, scheduler
/// hiccups blowing a wall limit); build failures are deterministic and
/// fail immediately.
fn execute_with_recovery(
    index: usize,
    spec: &RunSpec,
    default_slo: Option<u64>,
    wall_limit: Option<Duration>,
    retries: u32,
) -> Result<RunOutcome, RunFailure> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let result = catch_unwind(AssertUnwindSafe(|| {
            execute_run(index, spec, default_slo, wall_limit)
        }));
        let failure = match result {
            Ok(Ok(outcome)) => return Ok(outcome),
            Ok(Err(mut f)) => {
                f.attempts = attempt;
                f
            }
            Err(payload) => RunFailure {
                index,
                label: spec.label(),
                kind: FailureKind::Panicked,
                detail: panic_message(payload),
                attempts: attempt,
            },
        };
        let transient = matches!(failure.kind, FailureKind::Panicked | FailureKind::TimedOut);
        if !transient || attempt > retries {
            return Err(failure);
        }
        // Bounded backoff: 10ms, 20ms, 40ms, ... capped at 200ms.
        let backoff = Duration::from_millis((10u64 << (attempt - 1).min(5)).min(200));
        std::thread::sleep(backoff);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Writes one replayable quarantine artifact for a failed run:
/// the failure report plus the full spec shape of the run (label, core,
/// preset, workload, overrides), enough to rebuild and re-execute it.
/// Write errors are reported to stderr, never escalated — quarantine is
/// best-effort by design.
fn quarantine_failure(dir: &std::path::Path, campaign: &str, spec: &CampaignSpec, f: &RunFailure) {
    let run = &spec.runs[f.index];
    let doc = Json::object()
        .with("schema", "rtosunit-quarantine-v1")
        .with("campaign", campaign)
        .with("failure", f.to_json())
        .with(
            "run",
            Json::object()
                .with("label", run.label())
                .with("core", run.core.name())
                .with("preset", run.preset.label())
                .with("workload", run.workload.name())
                .with("param", run.workload.param())
                .with("filter", run.filter.label())
                .with("stepwise", run.stepwise)
                .with("harts", run.harts)
                .with(
                    "overrides",
                    run.overrides
                        .iter()
                        .map(|o| o.to_json())
                        .collect::<Vec<_>>(),
                ),
        );
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{campaign}_run{}.json", f.index));
        std::fs::write(path, doc.render())
    };
    if let Err(e) = write() {
        eprintln!(
            "[{campaign}] quarantine write failed for run {}: {e}",
            f.index
        );
    }
}

/// Writes one progress update to stderr. On a terminal the line is
/// redrawn in place; on a pipe each completed run gets its own line so
/// logs stay readable.
fn progress_line(name: &str, done: usize, total: usize, label: &str) {
    use std::io::{IsTerminal, Write};
    let mut err = std::io::stderr().lock();
    if err.is_terminal() {
        let _ = write!(err, "\r\x1b[2K[{name} {done}/{total}] {label}");
        let _ = err.flush();
    } else {
        let _ = writeln!(err, "[{name} {done}/{total}] {label}");
    }
}

/// Terminates an in-place progress line so later output starts clean.
fn finish_progress() {
    use std::io::{IsTerminal, Write};
    let mut err = std::io::stderr().lock();
    if err.is_terminal() {
        let _ = writeln!(err);
    }
}

/// The deterministic aggregation of an executed [`CampaignSpec`].
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name.
    pub name: &'static str,
    /// Worker threads used (does not affect the results).
    pub workers: usize,
    /// Whether the JSON artifact carries extended (v3) telemetry.
    pub telemetry: bool,
    /// Successful outcomes in spec order. When every run succeeds (the
    /// normal case) this is one outcome per spec run.
    pub outcomes: Vec<RunOutcome>,
    /// Runs that produced no outcome, in spec order. Empty campaigns of
    /// failures keep the artifact byte-identical to the pre-resilience
    /// schema; any entry adds a `failures` section.
    pub failures: Vec<RunFailure>,
    /// Host wall-clock time of the whole campaign, nanoseconds.
    pub host_nanos: u64,
    /// Extra named artifact sections (e.g. oracle verification context),
    /// emitted after `runs` in attachment order. Empty by default, so
    /// plain campaigns stay byte-identical to the v1 schema.
    pub sections: Vec<(String, Json)>,
}

impl Campaign {
    /// Total simulated cycles across all runs.
    pub fn simulated_cycles(&self) -> u64 {
        self.outcomes
            .iter()
            .filter_map(|o| o.sim.as_ref())
            .map(|s| s.cycles)
            .sum()
    }

    /// Aggregate simulation throughput in simulated cycles per host
    /// second (the campaign self-report for the batching speedup).
    pub fn cycles_per_second(&self) -> f64 {
        if self.host_nanos == 0 {
            return 0.0;
        }
        self.simulated_cycles() as f64 / (self.host_nanos as f64 / 1e9)
    }

    /// One-line host-side throughput summary (non-deterministic — kept
    /// out of the JSON artifact).
    pub fn throughput_summary(&self) -> String {
        format!(
            "campaign `{}`: {} runs, {} simulated cycles in {:.2}s on {} workers ({:.2} Mcycles/s)",
            self.name,
            self.outcomes.len(),
            self.simulated_cycles(),
            self.host_nanos as f64 / 1e9,
            self.workers,
            self.cycles_per_second() / 1e6,
        )
    }

    /// The outcome with the given label, if any.
    pub fn find(&self, label: &str) -> Option<&RunOutcome> {
        self.outcomes.iter().find(|o| o.label == label)
    }

    /// Attaches a named extra section to the JSON artifact (rendered
    /// after `runs`, in attachment order).
    pub fn attach_section(&mut self, name: &str, section: Json) {
        self.sections.push((name.to_string(), section));
    }

    /// Campaign-wide switch metrics: every simulated run's histograms
    /// merged (deterministic regardless of worker count — the merge is
    /// commutative and the outcomes are already in spec order). The SLO
    /// aggregate is present only when every contributing run tracked the
    /// same threshold.
    pub fn aggregate_metrics(&self) -> SwitchMetrics {
        let mut agg = SwitchMetrics::new(None);
        let mut slo: Option<SloCounter> = None;
        let mut slo_uniform = true;
        for sim in self.outcomes.iter().filter_map(|o| o.sim.as_ref()) {
            agg.latency.merge(&sim.metrics.latency);
            for (a, b) in agg.phases.iter_mut().zip(sim.metrics.phases.iter()) {
                a.merge(b);
            }
            match (&mut slo, &sim.metrics.slo) {
                (None, Some(s)) => slo = Some(*s),
                (Some(acc), Some(s)) if acc.threshold == s.threshold => acc.merge(s),
                (_, None) | (Some(_), Some(_)) => slo_uniform = false,
            }
        }
        agg.slo = if slo_uniform { slo } else { None };
        agg
    }

    /// The machine-readable artifact. Without telemetry this is the
    /// deterministic `rtosunit-campaign-v1` schema: everything measured,
    /// nothing host-dependent (no wall-clock, no worker count). With
    /// telemetry enabled the schema becomes `rtosunit-campaign-v3`,
    /// adding per-run host wall-time, core counters, latency waterfall
    /// summaries, per-run latency/phase histograms with percentile
    /// reports and SLO accounting, and a campaign-wide `aggregate`;
    /// `host_nanos` makes v3 host-dependent.
    pub fn to_json(&self) -> Json {
        let runs = self
            .outcomes
            .iter()
            .map(|o| {
                let mut run = Json::object()
                    .with("label", o.label.as_str())
                    .with("core", o.core.name())
                    .with("preset", o.preset.label())
                    .with("workload", o.workload)
                    .with("param", o.param);
                // Emitted only for SMP runs so single-core campaigns stay
                // byte-identical to the pre-SMP v1 artifacts.
                if o.harts != 1 {
                    run.push("harts", o.harts);
                }
                match &o.sim {
                    Some(sim) => {
                        let mut j = Json::object()
                            .with("cycles", sim.cycles)
                            .with("retired", sim.retired)
                            .with("raw_switches", sim.raw_records.len())
                            .with("switches", sim.latencies.len());
                        match sim.stats() {
                            Some(s) => {
                                j.push("mean", s.mean);
                                j.push("min", s.min);
                                j.push("max", s.max);
                                j.push("jitter", s.jitter());
                            }
                            None => {
                                j.push("mean", Json::Null);
                                j.push("min", Json::Null);
                                j.push("max", Json::Null);
                                j.push("jitter", Json::Null);
                            }
                        }
                        j.push("latencies", sim.latencies.as_slice());
                        j.push(
                            "port",
                            Json::object()
                                .with("total", sim.port.0)
                                .with("core", sim.port.1)
                                .with("unit", sim.port.2),
                        );
                        j.push("trace_marks", sim.trace_marks.len());
                        j.push(
                            "ctx_queue",
                            match sim.ctx_queue {
                                Some((issued, stalls)) => Json::object()
                                    .with("issued", issued)
                                    .with("full_stalls", stalls),
                                None => Json::Null,
                            },
                        );
                        if let Some(bus) = &sim.bus {
                            j.push(
                                "bus",
                                bus.iter()
                                    .map(|m| {
                                        Json::object()
                                            .with("grants", m.grants)
                                            .with("wait_cycles", m.wait_cycles)
                                            .with("max_wait", m.max_wait)
                                    })
                                    .collect::<Vec<_>>(),
                            );
                        }
                        if self.telemetry {
                            let mut counters = Json::object();
                            for (name, value) in sim.counters.named() {
                                counters.push(name, value);
                            }
                            j.push("counters", counters);
                            j.push("waterfall", waterfall_json(&sim.waterfall));
                            j.push("latency_hist", metrics_json(&sim.metrics));
                        }
                        run.push("sim", j);
                    }
                    None => run.push("sim", Json::Null),
                }
                run.push("analytic", o.analytic.clone().unwrap_or(Json::Null));
                if self.telemetry {
                    run.push("host_nanos", o.host_nanos);
                }
                run
            })
            .collect::<Vec<_>>();
        let schema = if self.telemetry {
            "rtosunit-campaign-v3"
        } else {
            "rtosunit-campaign-v1"
        };
        let mut doc = Json::object()
            .with("schema", schema)
            .with("campaign", self.name);
        if self.telemetry {
            doc.push("host_nanos", self.host_nanos);
            doc.push("workers", self.workers);
        }
        doc.push("runs", runs);
        if !self.failures.is_empty() {
            doc.push(
                "failures",
                self.failures
                    .iter()
                    .map(RunFailure::to_json)
                    .collect::<Vec<_>>(),
            );
        }
        if self.telemetry {
            doc.push("aggregate", metrics_json(&self.aggregate_metrics()));
        }
        for (name, section) in &self.sections {
            doc.push(name, section.clone());
        }
        doc
    }

    /// Writes `dir/<name>.json` and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating `dir` or writing the
    /// file.
    pub fn write_json(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json().render())?;
        Ok(path)
    }
}

fn execute_run(
    index: usize,
    spec: &RunSpec,
    default_slo: Option<u64>,
    wall_limit: Option<Duration>,
) -> Result<RunOutcome, RunFailure> {
    let started = Instant::now();
    let deadline = wall_limit.map(|l| started + l);
    let slo = spec.slo.or(default_slo);
    let fail = |kind: FailureKind, detail: String| RunFailure {
        index,
        label: spec.label(),
        kind,
        detail,
        attempts: 0,
    };
    let built = |r: Result<GuestImage, KernelError>, what: &str| {
        r.map_err(|e| fail(FailureKind::Build, format!("{what} failed to build: {e:?}")))
    };
    let (sim, analytic) = match spec.workload {
        WorkloadSpec::Analytic { param, eval, .. } => {
            (None, Some(eval(param, spec.core, spec.preset)))
        }
        WorkloadSpec::Suite(w) => {
            let image = built(workloads::build(&w, spec.preset), "suite workload")?;
            let drive = IrqDrive::Periodic(w.ext_irq_interval);
            let sim = simulate(spec, &image, w.run_cycles, drive, slo, deadline)
                .map_err(|d| fail(FailureKind::TimedOut, d))?;
            (Some(sim), None)
        }
        WorkloadSpec::Custom {
            param,
            build,
            run_cycles,
            ext_irq_interval,
            ..
        } => {
            let image = built(build(param, spec.preset), "custom workload")?;
            let drive = IrqDrive::Periodic(ext_irq_interval);
            let sim = simulate(spec, &image, run_cycles, drive, slo, deadline)
                .map_err(|d| fail(FailureKind::TimedOut, d))?;
            (Some(sim), None)
        }
        WorkloadSpec::OpenLoop {
            param,
            build,
            run_cycles,
            arrivals,
            ..
        } => {
            let image = built(build(param, spec.preset), "open-loop workload")?;
            let drive = IrqDrive::Explicit(arrivals(param, run_cycles));
            let sim = simulate(spec, &image, run_cycles, drive, slo, deadline)
                .map_err(|d| fail(FailureKind::TimedOut, d))?;
            (Some(sim), None)
        }
    };
    Ok(RunOutcome {
        index,
        label: spec.label(),
        core: spec.core,
        preset: spec.preset,
        workload: spec.workload.name(),
        param: spec.workload.param(),
        harts: spec.harts,
        sim,
        analytic,
        host_nanos: started.elapsed().as_nanos() as u64,
    })
}

/// How a run's external interrupts are injected.
enum IrqDrive {
    /// Fixed interval, first injection at `interval` (0 = none) — the
    /// closed-loop suite/custom behaviour.
    Periodic(u64),
    /// Explicit arrival cycles (open-loop workloads); injections at or
    /// past the cycle budget are dropped.
    Explicit(Vec<u64>),
}

impl IrqDrive {
    /// Cycle of the earliest injection that will actually be scheduled,
    /// if any — the warm-start boot prefix must end before it.
    fn first(&self, run_cycles: u64) -> Option<u64> {
        match self {
            IrqDrive::Periodic(interval) => {
                (*interval > 0 && *interval < run_cycles).then_some(*interval)
            }
            IrqDrive::Explicit(arrivals) => arrivals
                .iter()
                .copied()
                .filter(|&at| at > 0 && at < run_cycles)
                .min(),
        }
    }

    fn schedule(&self, sys: &mut System, run_cycles: u64) {
        match self {
            IrqDrive::Periodic(interval) => {
                if *interval > 0 {
                    let mut at = *interval;
                    while at < run_cycles {
                        sys.schedule_external_irq(at);
                        at += interval;
                    }
                }
            }
            IrqDrive::Explicit(arrivals) => {
                for &at in arrivals {
                    if at > 0 && at < run_cycles {
                        sys.schedule_external_irq(at);
                    }
                }
            }
        }
    }
}

/// Chunk size for wall-limited runs: small enough that a runaway guest
/// is caught within milliseconds, large enough that the deadline checks
/// are noise. Chunked execution is cycle-exact with the unchunked run —
/// both `System::run` and `SmpSystem::run` are incremental.
const WALL_CHECK_CHUNK: u64 = 65_536;

/// Runs `step(chunk)` — which returns `true` once the guest has halted —
/// until `run_cycles` are spent, the guest halts, or `deadline` passes
/// (the error carries how far the run got).
fn run_with_deadline(
    run_cycles: u64,
    deadline: Option<Instant>,
    mut step: impl FnMut(u64) -> bool,
) -> Result<(), String> {
    let Some(deadline) = deadline else {
        step(run_cycles);
        return Ok(());
    };
    let mut done = 0u64;
    while done < run_cycles {
        if Instant::now() >= deadline {
            return Err(format!(
                "wall-time watchdog expired after {done} of {run_cycles} simulated cycles"
            ));
        }
        let chunk = WALL_CHECK_CHUNK.min(run_cycles - done);
        if step(chunk) {
            break;
        }
        done += chunk;
    }
    Ok(())
}

fn simulate(
    spec: &RunSpec,
    image: &GuestImage,
    run_cycles: u64,
    drive: IrqDrive,
    slo: Option<u64>,
    deadline: Option<Instant>,
) -> Result<SimOutcome, String> {
    if spec.harts > 1 {
        return simulate_smp(spec, image, run_cycles, &drive, slo, deadline);
    }
    let (mut sys, boot_cycles) = match &spec.warm {
        Some(warm) => {
            // The snapshot already contains overrides, block cache and
            // the installed image — it *is* the cold run at this cycle.
            // Injections inside the boot prefix would have fired during
            // a cold boot but cannot fire here, so reject the overlap
            // instead of silently diverging from the cold artifact.
            if warm.boot_cycles >= run_cycles {
                return Err(format!(
                    "boot prefix ({} cycles) swallows the whole {run_cycles}-cycle budget",
                    warm.boot_cycles
                ));
            }
            if let Some(first) = drive.first(run_cycles) {
                if first <= warm.boot_cycles {
                    return Err(format!(
                        "boot prefix ({} cycles) overlaps the first external \
                         interrupt at cycle {first}",
                        warm.boot_cycles
                    ));
                }
            }
            let sys = System::from_state_snap(&warm.state).map_err(|e| e.to_string())?;
            (sys, warm.boot_cycles)
        }
        None => {
            let mut sys = System::new(spec.core, spec.preset);
            for o in &spec.overrides {
                o.apply(&mut sys);
            }
            if spec.blocks {
                sys.set_block_cache(true);
            }
            image.install(&mut sys);
            (sys, 0)
        }
    };
    drive.schedule(&mut sys, run_cycles);
    let stepwise = spec.stepwise;
    run_with_deadline(run_cycles - boot_cycles, deadline, |chunk| {
        if stepwise {
            sys.run_stepwise(chunk);
        } else {
            sys.run(chunk);
        }
        sys.halted()
    })?;
    Ok(harvest(&mut sys, spec, None, slo))
}

/// The SMP variant of [`simulate`]: the measured image boots on hart 0,
/// every other hart runs a bare-metal load/store loop over its private
/// DMEM bank — functionally invisible, but every access contends for the
/// shared bus, stretching hart 0's switch latencies (the `fig_smp` axis).
fn simulate_smp(
    spec: &RunSpec,
    image: &GuestImage,
    run_cycles: u64,
    drive: &IrqDrive,
    slo: Option<u64>,
    deadline: Option<Instant>,
) -> Result<SimOutcome, String> {
    let mut smp = SmpSystem::new(spec.core, spec.preset, spec.harts);
    for o in &spec.overrides {
        o.apply(smp.hart_mut(0));
    }
    image.install(smp.hart_mut(0));
    let pounder = contention_program();
    for h in 1..spec.harts {
        smp.load_program(h, &pounder);
    }
    drive.schedule(smp.hart_mut(0), run_cycles);
    run_with_deadline(run_cycles, deadline, |chunk| {
        smp.run(chunk);
        smp.halted()
    })?;
    let bus: Vec<BusMasterStats> = {
        let shared = smp.shared();
        let shared = shared.borrow();
        (0..spec.harts).map(|h| shared.bus_stats(h)).collect()
    };
    Ok(harvest(smp.hart_mut(0), spec, Some(bus), slo))
}

/// An endless load/store walk over the hart's private DMEM bank: pure
/// shared-bus pressure, no functional footprint outside its own bank.
///
/// The walk visits 8 addresses 4 KiB apart — the same cache set on both
/// cached cores (CVA6: 64 sets × 16 B lines; NaxRiscv: 64 sets × 64 B
/// lines) with more tags than either's 4 ways — so every iteration
/// misses (and write-back evicts) instead of settling into the cache
/// and going silent on the bus.
fn contention_program() -> rvsim_isa::Program {
    use rvsim_isa::{Asm, Reg};
    let mut a = Asm::new(IMEM_BASE);
    a.li(Reg::T4, 4096);
    a.label("pound");
    a.li(Reg::T2, DMEM_BASE as i32);
    a.li(Reg::T1, 8);
    a.label("slot");
    a.sw(Reg::T3, 0, Reg::T2);
    a.lw(Reg::T3, 4, Reg::T2);
    a.add(Reg::T2, Reg::T2, Reg::T4);
    a.addi(Reg::T1, Reg::T1, -1);
    a.bne(Reg::T1, Reg::Zero, "slot");
    a.j("pound");
    a.finish().expect("contention program assembles")
}

fn harvest(
    sys: &mut System,
    spec: &RunSpec,
    bus: Option<Vec<BusMasterStats>>,
    slo: Option<u64>,
) -> SimOutcome {
    let raw_records = sys.take_records();
    let records = spec.filter.apply(spec.core, &raw_records);
    let latencies: Vec<u64> = records.iter().map(SwitchRecord::latency).collect();
    let trace_marks = sys.platform.mmio.trace_marks.clone();
    let waterfall = waterfall::decompose(&records, &trace_marks);
    let metrics = SwitchMetrics::from_episodes(&waterfall, slo);
    SimOutcome {
        raw_records,
        records,
        latencies,
        cycles: sys.platform.cycle(),
        retired: sys.core.retired(),
        unit: sys.unit_stats(),
        cv32rt: sys.cv32rt_unit().map(|u| u.stats),
        port: sys.platform.port_occupancy(),
        trace_marks,
        ctx_queue: sys.platform.ctx_queue_stats(),
        counters: sys.core.counters(),
        waterfall,
        metrics,
        bus,
    }
}

/// Renders one [`LatencyHistogram`] as its summary plus the standard
/// percentile report ([`rtosunit::hist::REPORTED_PERCENTILES`]). Empty
/// histograms render as `null` fields so readers need no special cases.
fn histogram_json(h: &LatencyHistogram) -> Json {
    let mut j = Json::object().with("count", h.count());
    match (h.min(), h.max(), h.mean()) {
        (Some(min), Some(max), Some(mean)) => {
            j.push("min", min);
            j.push("max", max);
            j.push("mean", mean);
        }
        _ => {
            j.push("min", Json::Null);
            j.push("max", Json::Null);
            j.push("mean", Json::Null);
        }
    }
    let mut pcts = Json::object();
    match h.report() {
        Some(report) => {
            for (name, value) in report {
                pcts.push(name, value);
            }
        }
        None => {
            for (name, _) in rtosunit::hist::REPORTED_PERCENTILES {
                pcts.push(name, Json::Null);
            }
        }
    }
    j.push("percentiles", pcts);
    j
}

/// Renders a run's [`SwitchMetrics`]: the end-to-end latency histogram,
/// one histogram per waterfall phase, and the SLO accounting (`null`
/// when no budget is configured).
fn metrics_json(m: &SwitchMetrics) -> Json {
    let mut phases = Json::object();
    for (name, hist) in m.named_phases() {
        phases.push(name, histogram_json(hist));
    }
    Json::object()
        .with("latency", histogram_json(&m.latency))
        .with("phases", phases)
        .with(
            "slo",
            match &m.slo {
                Some(slo) => Json::object()
                    .with("threshold", slo.threshold)
                    .with("total", slo.total)
                    .with("misses", slo.misses)
                    .with("miss_rate", slo.miss_rate()),
                None => Json::Null,
            },
        )
}

/// Summarises per-episode waterfalls as per-phase latency statistics.
fn waterfall_json(episodes: &[EpisodeWaterfall]) -> Json {
    let mut phases = Json::object();
    for (name, stats) in waterfall::phase_stats(episodes) {
        phases.push(
            name,
            Json::object()
                .with("mean", stats.mean)
                .with("min", stats.min)
                .with("max", stats.max)
                .with("jitter", stats.jitter()),
        );
    }
    Json::object()
        .with("episodes", episodes.len())
        .with("phases", phases)
}

/// Renders the spec itself (shape, not results) — a debugging aid kept
/// deterministic like everything else in this module.
pub fn spec_to_json(spec: &CampaignSpec) -> Json {
    Json::object().with("campaign", spec.name).with(
        "runs",
        spec.runs
            .iter()
            .map(|r| {
                Json::object()
                    .with("label", r.label())
                    .with("filter", r.filter.label())
                    .with("stepwise", r.stepwise)
                    .with(
                        "overrides",
                        r.overrides.iter().map(|o| o.to_json()).collect::<Vec<_>>(),
                    )
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use freertos_lite::KernelBuilder;

    fn tiny_kernel(_param: u32, preset: Preset) -> Result<GuestImage, KernelError> {
        let mut k = KernelBuilder::new(preset);
        k.task("a", 5, |t| t.yield_now());
        k.task("b", 4, |t| t.yield_now());
        k.build()
    }

    fn empty_kernel(_param: u32, preset: Preset) -> Result<GuestImage, KernelError> {
        KernelBuilder::new(preset).build()
    }

    #[test]
    fn campaign_survives_panics_timeouts_and_build_failures() {
        let qdir =
            std::env::temp_dir().join(format!("rtosbench_quarantine_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&qdir);
        let good = RunSpec::new(
            CoreKind::Cv32e40p,
            Preset::Vanilla,
            WorkloadSpec::Custom {
                name: "good",
                param: 0,
                build: tiny_kernel,
                run_cycles: 50_000,
                ext_irq_interval: 0,
            },
        );
        let panicking = RunSpec::new(
            CoreKind::Cv32e40p,
            Preset::Vanilla,
            WorkloadSpec::Analytic {
                name: "boom",
                param: 0,
                eval: |_, _, _| panic!("induced worker panic"),
            },
        );
        // A runaway guest: a cycle budget that can never finish inside
        // the wall limit. The watchdog must cut it, not hang the
        // campaign.
        let runaway = RunSpec::new(
            CoreKind::Cv32e40p,
            Preset::Vanilla,
            WorkloadSpec::Custom {
                name: "runaway",
                param: 0,
                build: tiny_kernel,
                run_cycles: u64::MAX / 2,
                ext_irq_interval: 0,
            },
        );
        let unbuildable = RunSpec::new(
            CoreKind::Cv32e40p,
            Preset::Vanilla,
            WorkloadSpec::Custom {
                name: "nobuild",
                param: 0,
                build: empty_kernel,
                run_cycles: 1_000,
                ext_irq_interval: 0,
            },
        );
        let c = CampaignSpec::new("test_resilience")
            .with(good)
            .with(panicking)
            .with(runaway)
            .with(unbuildable)
            .with_wall_limit(Duration::from_millis(500))
            .with_retries(1)
            .with_quarantine(&qdir)
            .run(2);
        // The campaign completed with partial results: the good run's
        // outcome plus one reported failure per broken run.
        assert_eq!(c.outcomes.len(), 1);
        assert_eq!(c.outcomes[0].workload, "good");
        assert!(c.outcomes[0].sim.is_some());
        assert_eq!(c.failures.len(), 3);
        let by_label = |l: &str| {
            c.failures
                .iter()
                .find(|f| f.label.contains(l))
                .unwrap_or_else(|| panic!("no failure for {l}"))
        };
        let boom = by_label("boom");
        assert_eq!(boom.kind, FailureKind::Panicked);
        assert!(boom.detail.contains("induced worker panic"));
        assert_eq!(boom.attempts, 2, "panics are retried once");
        let runaway = by_label("runaway");
        assert_eq!(runaway.kind, FailureKind::TimedOut);
        assert!(runaway.detail.contains("wall-time watchdog"));
        let nobuild = by_label("nobuild");
        assert_eq!(nobuild.kind, FailureKind::Build);
        assert_eq!(nobuild.attempts, 1, "build failures are never retried");
        // The artifact reports the failures...
        let rendered = c.to_json().render();
        assert!(rendered.contains("\"failures\""));
        assert!(rendered.contains("\"timed_out\""));
        // ...and each failure left a replayable quarantine artifact.
        for f in &c.failures {
            let path = qdir.join(format!("test_resilience_run{}.json", f.index));
            let body = std::fs::read_to_string(&path).expect("quarantine artifact exists");
            assert!(body.contains("rtosunit-quarantine-v1"));
            assert!(body.contains(f.kind.name()));
        }
        let _ = std::fs::remove_dir_all(&qdir);
    }

    fn tiny_spec() -> CampaignSpec {
        let w = workloads::by_name("pingpong_semaphore").expect("exists");
        CampaignSpec::new("test_tiny")
            .with(RunSpec::new(
                CoreKind::Cv32e40p,
                Preset::Vanilla,
                WorkloadSpec::Suite(w),
            ))
            .with(RunSpec::new(
                CoreKind::Cv32e40p,
                Preset::Slt,
                WorkloadSpec::Suite(w),
            ))
            .with(RunSpec::new(
                CoreKind::Cva6,
                Preset::S,
                WorkloadSpec::Suite(w),
            ))
    }

    #[test]
    fn outcomes_arrive_in_spec_order() {
        let c = tiny_spec().run(3);
        assert_eq!(c.outcomes.len(), 3);
        for (i, o) in c.outcomes.iter().enumerate() {
            assert_eq!(o.index, i);
            assert!(o.sim.as_ref().is_some_and(|s| !s.latencies.is_empty()));
        }
        assert_eq!(c.outcomes[0].preset, Preset::Vanilla);
        assert_eq!(c.outcomes[2].core, CoreKind::Cva6);
    }

    #[test]
    fn worker_count_does_not_change_the_artifact() {
        let spec = tiny_spec();
        let sequential = spec.run(1).to_json().render();
        let parallel = spec.run(3).to_json().render();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn analytic_runs_skip_simulation() {
        let spec = CampaignSpec::new("test_analytic").with(RunSpec::new(
            CoreKind::Cv32e40p,
            Preset::T,
            WorkloadSpec::Analytic {
                name: "square",
                param: 12,
                eval: |p, _, _| Json::object().with("square", u64::from(p) * u64::from(p)),
            },
        ));
        let c = spec.run(2);
        assert!(c.outcomes[0].sim.is_none());
        let rendered = c.to_json().render();
        assert!(rendered.contains("\"square\": 144"));
    }

    #[test]
    fn stepwise_and_batched_produce_identical_measurements() {
        let w = workloads::by_name("roundrobin_yield").expect("exists");
        let mut batched = RunSpec::new(CoreKind::Cv32e40p, Preset::Slt, WorkloadSpec::Suite(w));
        batched.label = Some("x".into());
        let mut stepwise = batched.clone();
        stepwise.stepwise = true;
        let spec = CampaignSpec::new("test_equiv").with(batched).with(stepwise);
        let c = spec.run(2);
        let a = c.outcomes[0].sim.as_ref().expect("sim");
        let b = c.outcomes[1].sim.as_ref().expect("sim");
        assert_eq!(a.raw_records, b.raw_records);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.retired, b.retired);
        assert_eq!(a.port, b.port);
        assert_eq!(a.trace_marks, b.trace_marks);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.waterfall, b.waterfall);
    }

    #[test]
    fn smp_contention_stretches_latency_and_reports_bus_stats() {
        let w = workloads::by_name("pingpong_semaphore").expect("exists");
        let solo = RunSpec::new(CoreKind::Cv32e40p, Preset::Vanilla, WorkloadSpec::Suite(w));
        let contended = solo.clone().with_harts(4);
        let c = CampaignSpec::new("test_smp")
            .with(solo)
            .with(contended)
            .run(2);
        assert!(
            c.outcomes[1].label.ends_with("/pingpong_semaphore/4harts"),
            "SMP label missing the harts suffix: {}",
            c.outcomes[1].label
        );
        let a = c.outcomes[0].sim.as_ref().expect("sim");
        let b = c.outcomes[1].sim.as_ref().expect("sim");
        assert!(a.bus.is_none(), "single-core runs carry no bus stats");
        let bus = b.bus.as_ref().expect("SMP run reports bus stats");
        assert_eq!(bus.len(), 4);
        assert!(bus[1].grants > 0, "contention workers never hit the bus");
        let (sa, sb) = (a.stats().expect("stats"), b.stats().expect("stats"));
        assert!(
            sb.mean > sa.mean,
            "bus contention must stretch mean switch latency: {} !> {}",
            sb.mean,
            sa.mean
        );
        let rendered = c.to_json().render();
        assert!(rendered.contains("\"harts\": 4"));
        assert!(rendered.contains("\"wait_cycles\""));
        // The single-core run's JSON is unchanged by the SMP axis.
        assert!(!rendered.contains("\"harts\": 1"));
    }

    #[test]
    fn warm_start_reproduces_the_cold_artifact() {
        let w = workloads::by_name("pingpong_semaphore").expect("exists");
        let cold_spec = CampaignSpec::new("test_warm")
            .with(RunSpec::new(
                CoreKind::Cv32e40p,
                Preset::Slt,
                WorkloadSpec::Suite(w),
            ))
            .with(
                RunSpec::new(CoreKind::Cva6, Preset::Vanilla, WorkloadSpec::Suite(w)).with_blocks(),
            );
        let cold = cold_spec.run(2);

        let mut warm_spec = CampaignSpec::new("test_warm");
        let mut saved = 0u64;
        for run in cold_spec.runs.clone() {
            let doc = run.boot_snapshot(12_345).expect("boot prefix simulates");
            let warm = run.from_snapshot(&doc).expect("fork from snapshot");
            saved += warm.warm.as_ref().expect("warm handle").boot_cycles();
            warm_spec = warm_spec.with(warm);
        }
        assert_eq!(saved, 2 * 12_345, "boot prefix length self-reports");
        let warm = warm_spec.run(2);
        assert_eq!(
            cold.to_json().render(),
            warm.to_json().render(),
            "warm-started campaign artifact must be byte-identical to cold boot"
        );
    }

    #[test]
    fn warm_start_rejects_an_overlapping_boot_prefix() {
        let w = workloads::by_name("interrupt_latency").expect("exists");
        assert!(w.ext_irq_interval > 0, "needs external interrupts");
        let run = RunSpec::new(CoreKind::Cv32e40p, Preset::Slt, WorkloadSpec::Suite(w));
        let doc = run
            .boot_snapshot(w.ext_irq_interval + 500)
            .expect("boot prefix simulates");
        let warm = run.from_snapshot(&doc).expect("fork");
        let c = CampaignSpec::new("test_warm_overlap").with(warm).run(1);
        assert!(c.outcomes.is_empty());
        assert_eq!(c.failures.len(), 1);
        assert!(
            c.failures[0].detail.contains("overlaps the first external"),
            "unexpected failure detail: {}",
            c.failures[0].detail
        );
    }

    #[test]
    fn telemetry_upgrades_the_schema_and_adds_sections() {
        let w = workloads::by_name("pingpong_semaphore").expect("exists");
        let run = || {
            CampaignSpec::new("test_telemetry").with(RunSpec::new(
                CoreKind::Cv32e40p,
                Preset::Slt,
                WorkloadSpec::Suite(w),
            ))
        };
        let plain = run().run(1).to_json().render();
        assert!(plain.contains("\"schema\": \"rtosunit-campaign-v1\""));
        assert!(!plain.contains("counters"));
        assert!(!plain.contains("host_nanos"));
        let rich = run().with_telemetry().run(1).to_json().render();
        assert!(rich.contains("\"schema\": \"rtosunit-campaign-v3\""));
        for key in [
            "counters",
            "stall_exec",
            "waterfall",
            "episodes",
            "host_nanos",
            "workers",
            "latency_hist",
            "percentiles",
            "\"p99.99\"",
            "aggregate",
        ] {
            assert!(rich.contains(key), "v3 artifact missing `{key}`");
        }
        // The v1 body is unaffected by telemetry: strip the v2-only keys
        // conceptually by checking the shared measurements still match.
        let c = run().run(1);
        let sim = c.outcomes[0].sim.as_ref().expect("sim");
        assert!(!sim.waterfall.is_empty());
        for e in &sim.waterfall {
            assert_eq!(e.phases.iter().sum::<u64>(), e.record.latency());
        }
    }
}
