//! The five RTOSBench-style workloads.

use freertos_lite::{GuestImage, KernelBuilder, KernelError};
use rtosunit::Preset;

/// Number of measurement iterations (the paper runs 20).
pub const ITERATIONS: usize = 20;

/// A named benchmark workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Workload name (RTOSBench-style).
    pub name: &'static str,
    /// Timer-tick period in cycles.
    pub tick_period: u32,
    /// Cycle budget for one run.
    pub run_cycles: u64,
    /// Interval of injected external interrupts (0 = none). Deliberately
    /// co-prime with the tick period so triggers drift across tick phases.
    pub ext_irq_interval: u64,
}

/// All workloads in suite order.
pub const ALL: [Workload; 7] = [
    Workload {
        name: "pingpong_semaphore",
        tick_period: 5000,
        run_cycles: 400_000,
        ext_irq_interval: 0,
    },
    Workload {
        name: "roundrobin_yield",
        tick_period: 4000,
        run_cycles: 400_000,
        ext_irq_interval: 0,
    },
    Workload {
        name: "mutex_workload",
        tick_period: 5000,
        run_cycles: 400_000,
        ext_irq_interval: 0,
    },
    Workload {
        name: "delay_periodic",
        tick_period: 1500,
        run_cycles: 400_000,
        ext_irq_interval: 0,
    },
    Workload {
        name: "interrupt_latency",
        tick_period: 6000,
        run_cycles: 400_000,
        ext_irq_interval: 9973,
    },
    Workload {
        name: "queue_burst",
        tick_period: 5000,
        run_cycles: 400_000,
        ext_irq_interval: 0,
    },
    Workload {
        name: "priority_chain",
        tick_period: 7000,
        run_cycles: 400_000,
        ext_irq_interval: 0,
    },
];

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    ALL.into_iter().find(|w| w.name == name)
}

/// Builds the guest image of `workload` for `preset`.
///
/// # Errors
///
/// Propagates kernel-construction errors (none occur for the shipped
/// workloads; the error path exists for custom experimentation).
pub fn build(workload: &Workload, preset: Preset) -> Result<GuestImage, KernelError> {
    build_with(workload, preset, false)
}

/// Like [`build`] but with kernel phase-mark instrumentation enabled:
/// the ISR emits [`rtosunit::PhaseCode`] TRACE writes at its save and
/// scheduling boundaries, feeding the latency waterfall. The extra store
/// instructions lengthen the measured switch path, so traced images are
/// for observability runs, never for the headline latency figures.
///
/// # Errors
///
/// Propagates kernel-construction errors, like [`build`].
pub fn build_traced(workload: &Workload, preset: Preset) -> Result<GuestImage, KernelError> {
    build_with(workload, preset, true)
}

fn build_with(
    workload: &Workload,
    preset: Preset,
    trace_phases: bool,
) -> Result<GuestImage, KernelError> {
    let mut k = KernelBuilder::new(preset);
    k.tick_period(workload.tick_period);
    k.trace_phases(trace_phases);
    match workload.name {
        "pingpong_semaphore" => {
            // Two tasks handing a token back and forth through two
            // semaphores, with a little computation in between.
            k.semaphore("ping", 0);
            k.semaphore("pong", 0);
            k.task("producer", 5, |t| {
                t.compute(8);
                t.sem_give("ping");
                t.sem_take("pong");
            });
            k.task("consumer", 5, |t| {
                t.sem_take("ping");
                t.compute(6);
                t.sem_give("pong");
            });
        }
        "roundrobin_yield" => {
            // Four equal-priority tasks: compute then yield voluntarily;
            // the timer also slices them.
            for (name, work) in [("rr0", 80u32), ("rr1", 120), ("rr2", 60), ("rr3", 100)] {
                k.task(name, 4, move |t| {
                    t.compute(work / 8);
                    t.yield_now();
                });
            }
        }
        "mutex_workload" => {
            // Three tasks contending on one mutex (the paper's power-
            // analysis workload, §6.3).
            k.mutex("m");
            for (name, inner, outer) in [("mx0", 150u32, 50u32), ("mx1", 90, 80), ("mx2", 120, 30)]
            {
                k.task(name, 4, move |t| {
                    t.mutex_lock("m");
                    t.compute(inner / 8);
                    t.mutex_unlock("m");
                    t.compute(outer / 8);
                    t.yield_now();
                });
            }
        }
        "delay_periodic" => {
            // Staggered periodic tasks: every tick moves tasks between the
            // delay and ready lists — the vanilla jitter source (§6.1).
            for (name, prio, period, work) in [
                ("p1", 6u8, 1u32, 40u32),
                ("p2", 5, 2, 60),
                ("p3", 4, 3, 80),
                ("p5", 3, 5, 100),
            ] {
                k.task(name, prio, move |t| {
                    t.compute(work / 8);
                    t.delay(period);
                });
            }
        }
        "interrupt_latency" => {
            // Deferred interrupt handling (§1): an external interrupt
            // wakes a high-priority handler task through a semaphore.
            k.semaphore("event", 0);
            k.ext_irq_gives("event");
            k.task("handler", 7, |t| {
                t.sem_take("event");
                t.compute(5);
            });
            k.task("background", 2, |t| {
                t.compute(25);
                t.yield_now();
            });
        }
        "queue_burst" => {
            // A producer releases items in bursts through a counting
            // semaphore; a same-priority consumer drains them. Exercises
            // counting semantics and repeated give-without-switch.
            k.semaphore("items", 0);
            k.semaphore("space", 4);
            k.task("burst_producer", 5, |t| {
                for _ in 0..3 {
                    t.sem_take("space");
                    t.compute(4);
                    t.sem_give("items");
                }
                t.delay(1);
            });
            k.task("burst_consumer", 5, |t| {
                t.sem_take("items");
                t.compute(6);
                t.sem_give("space");
            });
        }
        "priority_chain" => {
            // A cascade: the low task wakes mid, which preempts and wakes
            // high, which preempts again — back-to-back voluntary
            // switches through three priority levels (Fig. 2 (d)/(e)).
            k.semaphore("to_mid", 0);
            k.semaphore("to_high", 0);
            k.task("chain_low", 2, |t| {
                t.compute(20);
                t.sem_give("to_mid");
            });
            k.task("chain_mid", 4, |t| {
                t.sem_take("to_mid");
                t.compute(8);
                t.sem_give("to_high");
            });
            k.task("chain_high", 6, |t| {
                t.sem_take("to_high");
                t.compute(4);
            });
        }
        other => panic!("unknown workload `{other}`"),
    }
    k.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_for_all_presets() {
        for w in ALL {
            for p in Preset::LATENCY_SET {
                let img = build(&w, p).unwrap_or_else(|e| panic!("{}/{p}: {e}", w.name));
                assert!(
                    img.text_words() > 50,
                    "{}: suspiciously small image",
                    w.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("mutex_workload").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn ext_irq_only_for_interrupt_latency() {
        for w in ALL {
            assert_eq!(w.ext_irq_interval > 0, w.name == "interrupt_latency");
        }
    }
}
