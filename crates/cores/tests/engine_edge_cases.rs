//! Edge-case tests for the core engine: CSR behaviour under interrupts,
//! byte/half memory semantics, predictor behaviour, and coprocessor
//! stall interactions.

use rvsim_cores::engine::{BusResponse, DataBus};
use rvsim_cores::{
    make_engine, ArchState, Bank, Coprocessor, CoreEvent, CoreKind, NullCoprocessor,
};
use rvsim_isa::{csr, Asm, CustomOp, Reg};
use rvsim_mem::{AccessSize, Mem};

struct SramBus {
    mem: Mem,
}

impl DataBus for SramBus {
    fn core_access(&mut self, addr: u32, size: AccessSize, write: Option<u32>) -> BusResponse {
        match write {
            Some(v) => {
                self.mem.write(addr, size, v);
                BusResponse {
                    data: 0,
                    extra_latency: 0,
                }
            }
            None => BusResponse {
                data: self.mem.read(addr, size),
                extra_latency: 1,
            },
        }
    }

    fn unit_access(&mut self, _addr: u32, _write: Option<u32>) -> Option<u32> {
        None
    }
}

fn bus() -> SramBus {
    SramBus {
        mem: Mem::new(0x2000_0000, 0x1000),
    }
}

fn run(asm: Asm, kind: CoreKind) -> rvsim_cores::CoreEngine {
    let prog = asm.finish().expect("assembles");
    let mut e = make_engine(kind, 0, 0x1_0000);
    e.load_program(&prog);
    let mut b = bus();
    e.run_with(&mut b, &mut NullCoprocessor, 1_000_000, |_, _| {});
    assert!(e.halted(), "program did not halt");
    e
}

#[test]
fn signed_and_unsigned_subword_loads() {
    let mut a = Asm::new(0);
    a.li(Reg::T0, 0x2000_0000);
    a.li(Reg::T1, 0xFFFF_FF80u32 as i32);
    a.sw(Reg::T1, 0, Reg::T0);
    a.lb(Reg::A0, 0, Reg::T0); // sign-extended 0x80
    a.lbu(Reg::A1, 0, Reg::T0); // zero-extended 0x80
    a.lh(Reg::A2, 0, Reg::T0); // sign-extended 0xFF80
    a.lhu(Reg::A3, 0, Reg::T0);
    a.ebreak();
    let e = run(a, CoreKind::Cv32e40p);
    assert_eq!(e.state.read_reg(Reg::A0) as i32, -128);
    assert_eq!(e.state.read_reg(Reg::A1), 0x80);
    assert_eq!(e.state.read_reg(Reg::A2) as i32, -128);
    assert_eq!(e.state.read_reg(Reg::A3), 0xFF80);
}

#[test]
fn sub_word_stores_preserve_neighbours() {
    let mut a = Asm::new(0);
    a.li(Reg::T0, 0x2000_0000);
    a.li(Reg::T1, 0x1122_3344u32 as i32);
    a.sw(Reg::T1, 0, Reg::T0);
    a.li(Reg::T2, 0xAB);
    a.sb(Reg::T2, 1, Reg::T0);
    a.li(Reg::T2, 0xCDEF);
    a.sh(Reg::T2, 2, Reg::T0);
    a.lw(Reg::A0, 0, Reg::T0);
    a.ebreak();
    let e = run(a, CoreKind::Cv32e40p);
    assert_eq!(e.state.read_reg(Reg::A0), 0xCDEF_AB44);
}

#[test]
fn mscratch_roundtrip_and_mcycle_reads() {
    let mut a = Asm::new(0);
    a.li(Reg::T0, 0x1234);
    a.csrw(csr::MSCRATCH, Reg::T0);
    a.csrr(Reg::A0, csr::MSCRATCH);
    a.csrr(Reg::A1, csr::MCYCLE);
    a.ebreak();
    let e = run(a, CoreKind::Cv32e40p);
    assert_eq!(e.state.read_reg(Reg::A0), 0x1234);
    assert!(e.state.read_reg(Reg::A1) > 0, "mcycle must tick");
}

#[test]
fn predictor_learns_a_regular_loop_on_cva6() {
    // A long loop: after warm-up, the backward branch predicts taken and
    // iterations get cheaper than the static-not-taken core would pay.
    let mut a = Asm::new(0);
    a.li(Reg::T0, 400);
    a.label("l");
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "l");
    a.ebreak();
    let cva6 = run(a.clone(), CoreKind::Cva6).cycle();
    let cv32 = run(a, CoreKind::Cv32e40p).cycle();
    // CV32E40P pays 3 cycles per taken branch; CVA6's predictor converges
    // to ~1, so despite the higher mispredict penalty it ends up cheaper.
    assert!(
        cva6 < cv32,
        "predictor should win on a hot loop: cva6={cva6} cv32={cv32}"
    );
}

/// A coprocessor that stalls `SWITCH_RF` a fixed number of cycles and
/// records what it saw.
#[derive(Default)]
struct StallingCoproc {
    stall_left: u32,
    switches: u32,
    mrets: u32,
}

impl Coprocessor for StallingCoproc {
    fn on_interrupt_entry(&mut self, state: &mut ArchState, _cause: u32) {
        state.set_active_bank(Bank::Isr);
        self.stall_left = 10;
    }

    fn mret_stall(&self) -> bool {
        false
    }

    fn on_mret(&mut self, _state: &mut ArchState) {
        self.mrets += 1;
    }

    fn custom_stall(&self, op: CustomOp) -> bool {
        op == CustomOp::SwitchRf && self.stall_left > 0
    }

    fn exec_custom(&mut self, op: CustomOp, _rs1: u32, _rs2: u32, state: &mut ArchState) -> u32 {
        assert_eq!(op, CustomOp::SwitchRf);
        state.set_active_bank(Bank::App);
        self.switches += 1;
        0
    }

    fn step(&mut self, _state: &mut ArchState, _bus: &mut dyn DataBus) {
        self.stall_left = self.stall_left.saturating_sub(1);
    }
}

#[test]
fn switch_rf_stall_delays_issue_until_coproc_releases() {
    let mut a = Asm::new(0);
    a.la(Reg::T0, "isr");
    a.csrw(csr::MTVEC, Reg::T0);
    a.li(Reg::T0, csr::MIP_MTIP as i32);
    a.csrw(csr::MIE, Reg::T0);
    a.enable_interrupts();
    a.label("spin");
    a.j("spin");
    a.label("isr");
    a.switch_rf();
    a.ebreak();
    let prog = a.finish().expect("assembles");
    let mut e = make_engine(CoreKind::Cv32e40p, 0, 0x1_0000);
    e.load_program(&prog);
    let mut b = bus();
    let mut co = StallingCoproc::default();
    let mut entered_at = 0;
    for cycle in 0..200u64 {
        e.state.csrs.mip = if cycle > 20 { csr::MIP_MTIP } else { 0 };
        let out = e.step(&mut b, &mut co);
        // The platform normally steps the coprocessor once per cycle.
        co.step(&mut e.state, &mut b);
        if let Some(CoreEvent::InterruptEntered { .. }) = out.event {
            entered_at = cycle;
        }
        if e.halted() {
            // SWITCH_RF had to wait out the 10-cycle stall.
            assert!(cycle >= entered_at + 10, "stall was not honoured");
            assert_eq!(co.switches, 1);
            assert_eq!(e.state.active_bank(), Bank::App);
            return;
        }
    }
    panic!("ISR never completed");
}

#[test]
fn interrupts_are_not_taken_while_masked() {
    let mut a = Asm::new(0);
    a.la(Reg::T0, "isr");
    a.csrw(csr::MTVEC, Reg::T0);
    a.li(Reg::T0, csr::MIP_MTIP as i32);
    a.csrw(csr::MIE, Reg::T0);
    // MIE stays off: the pending timer must never fire.
    a.li(Reg::T1, 200);
    a.label("l");
    a.addi(Reg::T1, Reg::T1, -1);
    a.bnez(Reg::T1, "l");
    a.ebreak();
    a.label("isr");
    a.li(Reg::A7, 0xBAD);
    a.mret();
    let prog = a.finish().expect("assembles");
    let mut e = make_engine(CoreKind::Cv32e40p, 0, 0x1_0000);
    e.load_program(&prog);
    let mut b = bus();
    let mut co = NullCoprocessor;
    while !e.halted() {
        e.state.csrs.mip = csr::MIP_MTIP;
        e.step(&mut b, &mut co);
        assert!(e.cycle() < 10_000);
    }
    assert_eq!(e.state.read_reg(Reg::A7), 0, "masked interrupt was taken");
}

#[test]
fn auipc_and_jalr_form_long_calls() {
    // A classic auipc+jalr pair must land on the target.
    let mut a = Asm::new(0);
    a.auipc(Reg::T0, 0); // t0 = pc of this instruction
    a.jalr(Reg::Ra, Reg::T0, 12); // jump to pc + 12 = "target"
    a.ebreak(); // skipped
    a.label("target");
    a.li(Reg::A0, 77);
    a.ebreak();
    let e = run(a, CoreKind::NaxRiscv);
    assert_eq!(e.state.read_reg(Reg::A0), 77);
    assert_eq!(
        e.state.read_reg(Reg::Ra),
        8,
        "link register holds return address"
    );
}

#[test]
fn recent_pc_trace_covers_last_instructions() {
    let mut a = Asm::new(0);
    for _ in 0..100 {
        a.nop();
    }
    a.ebreak();
    let e = run(a, CoreKind::Cv32e40p);
    let pcs: Vec<u32> = e.recent_pcs().map(|(_, pc)| pc).collect();
    assert_eq!(pcs.len(), 64, "trace ring keeps the last 64 entries");
    assert_eq!(
        *pcs.last().expect("non-empty"),
        100 * 4,
        "last pc is the ebreak"
    );
}
