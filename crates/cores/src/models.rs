//! The three evaluated core models (paper §3, §5).

use crate::engine::CoreEngine;
use crate::timing::TimingParams;
use rvsim_mem::CacheConfig;
use std::fmt;

/// Which of the paper's three cores a platform is built around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// CV32E40P: microcontroller-class, 4-stage in-order, no cache,
    /// single-cycle tightly coupled SRAM (§5.1).
    Cv32e40p,
    /// CVA6: application-class, 6-stage, write-through cache; the RTOSUnit
    /// arbitrates at the **bus level** and bypasses the cache (§5.2).
    Cva6,
    /// NaxRiscv: superscalar out-of-order, write-back cache; the RTOSUnit
    /// arbitrates **inside the LSU** through the ctxQueue and shares the
    /// cache (§5.3).
    NaxRiscv,
}

impl CoreKind {
    /// All three cores in paper order.
    pub const ALL: [CoreKind; 3] = [CoreKind::Cv32e40p, CoreKind::Cva6, CoreKind::NaxRiscv];

    /// Timing parameters of this core.
    pub fn timing(self) -> TimingParams {
        match self {
            CoreKind::Cv32e40p => TimingParams::cv32e40p(),
            CoreKind::Cva6 => TimingParams::cva6(),
            CoreKind::NaxRiscv => TimingParams::naxriscv(),
        }
    }

    /// Data-cache configuration, if the core has one.
    pub fn dcache(self) -> Option<CacheConfig> {
        match self {
            CoreKind::Cv32e40p => None,
            CoreKind::Cva6 => Some(CacheConfig::cva6_data()),
            CoreKind::NaxRiscv => Some(CacheConfig::naxriscv_data()),
        }
    }

    /// Whether the RTOSUnit shares the data cache (LSU-level arbitration,
    /// NaxRiscv) instead of bypassing it at the bus (CVA6) — paper §5.
    pub fn unit_shares_cache(self) -> bool {
        matches!(self, CoreKind::NaxRiscv)
    }

    /// Backing-memory latency behind the cache/bus, in extra cycles per
    /// access (0 = single-cycle SRAM).
    pub fn memory_latency(self) -> u32 {
        match self {
            CoreKind::Cv32e40p => 0,
            CoreKind::Cva6 => 0,
            CoreKind::NaxRiscv => 0,
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        self.timing().name
    }

    /// Inverse of [`name`](Self::name): resolves a display name back to
    /// the core kind (used by snapshot self-description).
    pub fn from_name(name: &str) -> Option<CoreKind> {
        CoreKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for CoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a [`CoreEngine`] of the given kind with instruction memory at
/// `imem_base` of `imem_size` bytes.
pub fn make_engine(kind: CoreKind, imem_base: u32, imem_size: u32) -> CoreEngine {
    CoreEngine::new(kind.timing(), imem_base, imem_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_presence_matches_paper() {
        assert!(CoreKind::Cv32e40p.dcache().is_none());
        assert!(CoreKind::Cva6.dcache().is_some());
        assert!(CoreKind::NaxRiscv.dcache().is_some());
    }

    #[test]
    fn arbitration_levels_match_paper() {
        assert!(
            !CoreKind::Cva6.unit_shares_cache(),
            "CVA6 arbitrates at bus level"
        );
        assert!(
            CoreKind::NaxRiscv.unit_shares_cache(),
            "NaxRiscv arbitrates in the LSU"
        );
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = CoreKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["CV32E40P", "CVA6", "NaxRiscv"]);
    }
}
