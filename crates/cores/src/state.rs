//! Architectural state: the dual register banks, dirty bits and CSRs.

use crate::csrs::Csrs;
use rvsim_isa::Reg;
use rvsim_snapshot::{self as snap, Json, SnapError};

/// Identifies one of the two register-file banks (paper §4.2: the
/// application bank plus the duplicated ISR bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bank {
    /// The register file used by application tasks.
    App,
    /// The duplicated register file used during ISR execution (only
    /// present when context storing is accelerated).
    Isr,
}

impl Bank {
    fn index(self) -> usize {
        match self {
            Bank::App => 0,
            Bank::Isr => 1,
        }
    }
}

/// Full architectural state of a simulated core.
///
/// Cores without an RTOSUnit simply never switch away from [`Bank::App`].
/// Dirty bits (paper §4.5) are maintained for the application bank: any
/// *core* write sets the bit, restore-FSM writes use
/// [`ArchState::bank_write_clean`] and do not.
#[derive(Debug, Clone)]
pub struct ArchState {
    banks: [[u32; 32]; 2],
    active: Bank,
    dirty: u32,
    /// CSR file (shared between banks; `mstatus`/`mepc` are not banked,
    /// paper §4.2).
    pub csrs: Csrs,
    /// Program counter.
    pub pc: u32,
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState::new(0)
    }
}

impl ArchState {
    /// Creates a state with all registers zero and the PC at `reset_pc`.
    pub fn new(reset_pc: u32) -> ArchState {
        ArchState {
            banks: [[0; 32]; 2],
            active: Bank::App,
            dirty: 0,
            csrs: Csrs::default(),
            pc: reset_pc,
        }
    }

    /// The currently active register bank.
    pub fn active_bank(&self) -> Bank {
        self.active
    }

    /// Switches the active bank (used by the RTOSUnit on interrupt entry,
    /// `SWITCH_RF` and `mret`).
    pub fn set_active_bank(&mut self, bank: Bank) {
        self.active = bank;
    }

    /// Reads a register from the active bank.
    #[inline]
    pub fn read_reg(&self, r: Reg) -> u32 {
        self.banks[self.active.index()][r.number() as usize]
    }

    /// Writes a register in the active bank (writes to `zero` are
    /// discarded). Sets the dirty bit when the active bank is the
    /// application bank.
    #[inline]
    pub fn write_reg(&mut self, r: Reg, value: u32) {
        if r == Reg::Zero {
            return;
        }
        self.banks[self.active.index()][r.number() as usize] = value;
        if self.active == Bank::App {
            self.dirty |= 1 << r.number();
        }
    }

    /// Reads a register from a specific bank (RTOSUnit store FSM path).
    #[inline]
    pub fn bank_read(&self, bank: Bank, r: Reg) -> u32 {
        self.banks[bank.index()][r.number() as usize]
    }

    /// Writes a register in a specific bank *without* setting dirty bits
    /// (RTOSUnit restore/preload path: the written value matches context
    /// memory by construction).
    #[inline]
    pub fn bank_write_clean(&mut self, bank: Bank, r: Reg, value: u32) {
        if r == Reg::Zero {
            return;
        }
        self.banks[bank.index()][r.number() as usize] = value;
    }

    /// Dirty-bit mask of the application bank (bit *n* = `x{n}`).
    pub fn dirty_mask(&self) -> u32 {
        self.dirty
    }

    /// Whether `r` is dirty in the application bank.
    pub fn is_dirty(&self, r: Reg) -> bool {
        self.dirty & (1 << r.number()) != 0
    }

    /// Clears all dirty bits (RTOSUnit does this after ISR completion,
    /// paper §4.5).
    pub fn clear_dirty(&mut self) {
        self.dirty = 0;
    }

    /// Serializes both banks, the active-bank selector, dirty bits, CSRs
    /// and the PC for a machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        Json::object()
            .with("bank_app", snap::words_to_json(&self.banks[0]))
            .with("bank_isr", snap::words_to_json(&self.banks[1]))
            .with(
                "active",
                match self.active {
                    Bank::App => "app",
                    Bank::Isr => "isr",
                },
            )
            .with("dirty", self.dirty)
            .with("pc", self.pc)
            .with("csrs", self.csrs.to_snap())
    }

    /// Rebuilds the architectural state from [`to_snap`](Self::to_snap)
    /// output.
    ///
    /// # Errors
    ///
    /// Fails on missing fields or an unknown bank selector.
    pub fn from_snap(value: &Json) -> Result<ArchState, SnapError> {
        let app = snap::words_from_json(snap::field(value, "bank_app")?, 32)?;
        let isr = snap::words_from_json(snap::field(value, "bank_isr")?, 32)?;
        let active = match snap::get_str(value, "active")? {
            "app" => Bank::App,
            "isr" => Bank::Isr,
            other => return Err(SnapError::new(format!("state: unknown bank `{other}`"))),
        };
        let mut banks = [[0u32; 32]; 2];
        banks[0].copy_from_slice(&app);
        banks[1].copy_from_slice(&isr);
        Ok(ArchState {
            banks,
            active,
            dirty: snap::get_u32(value, "dirty")?,
            csrs: Csrs::from_snap(snap::field(value, "csrs")?)?,
            pc: snap::get_u32(value, "pc")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_immutable() {
        let mut s = ArchState::new(0);
        s.write_reg(Reg::Zero, 123);
        assert_eq!(s.read_reg(Reg::Zero), 0);
        assert_eq!(s.dirty_mask(), 0);
    }

    #[test]
    fn banks_are_independent() {
        let mut s = ArchState::new(0);
        s.write_reg(Reg::A0, 1); // app bank
        s.set_active_bank(Bank::Isr);
        assert_eq!(s.read_reg(Reg::A0), 0);
        s.write_reg(Reg::A0, 2);
        s.set_active_bank(Bank::App);
        assert_eq!(s.read_reg(Reg::A0), 1);
        assert_eq!(s.bank_read(Bank::Isr, Reg::A0), 2);
    }

    #[test]
    fn dirty_bits_track_app_writes_only() {
        let mut s = ArchState::new(0);
        s.write_reg(Reg::T0, 5);
        assert!(s.is_dirty(Reg::T0));
        s.set_active_bank(Bank::Isr);
        s.write_reg(Reg::T1, 6);
        assert!(!s.is_dirty(Reg::T1));
        s.set_active_bank(Bank::App);
        s.bank_write_clean(Bank::App, Reg::T2, 7);
        assert!(!s.is_dirty(Reg::T2));
        s.clear_dirty();
        assert_eq!(s.dirty_mask(), 0);
    }
}
