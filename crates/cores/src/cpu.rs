//! The object-safe [`CpuCore`] trait: a common face over the three timing
//! engines and the golden architectural executor.
//!
//! The SMP composition (`rtosunit::smp`) steps N heterogeneous harts in
//! per-cycle lockstep against a shared bus; it neither knows nor cares
//! whether a hart is a cycle-accurate [`CoreEngine`] or the untimed
//! [`GoldenCore`]. Both are driven through this trait: a cycle-budgeted
//! [`exec`](CpuCore::exec) for quiescent stretches and a single-cycle
//! [`step`](CpuCore::step) for lockstep windows, each returning an
//! [`Executed`] record (cycles burned, instructions retired, stop cause).

use crate::coproc::Coprocessor;
use crate::engine::{CoreEngine, CoreEvent, DataBus, StopReason};
use crate::golden::{GoldenCore, GoldenStep};
use crate::models::{make_engine, CoreKind};
use crate::profile::PcProfile;
use crate::state::ArchState;
use rvsim_isa::Program;

/// What one [`CpuCore::step`] or [`CpuCore::exec`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executed {
    /// Cycles consumed (always 1 per active `step`; the golden executor
    /// charges a nominal cycle per instruction).
    pub cycles: u64,
    /// Instructions retired during the call.
    pub instructions: u64,
    /// Event raised on the final cycle, if any.
    pub event: Option<CoreEvent>,
    /// Why the call returned.
    pub stop: StopReason,
}

/// An object-safe CPU hart: program load, hart identity, and cycle-budgeted
/// execution against a [`DataBus`] and a [`Coprocessor`].
///
/// Implemented by [`CoreEngine`] (all three `CoreKind` timing models) and
/// by [`GoldenCpu`] (the architectural executor wrapped with a nominal
/// 1-cycle-per-instruction clock).
pub trait CpuCore {
    /// Advances one cycle. `Executed::cycles` is 1 unless the core was
    /// already halted (then 0 with [`StopReason::Budget`]).
    fn step(&mut self, bus: &mut dyn DataBus, coproc: &mut dyn Coprocessor) -> Executed;

    /// Runs up to `max_cycles`, stopping early at the first event matching
    /// `event_mask` (bits from [`stop_events`](crate::engine::stop_events)),
    /// a coprocessor custom instruction, or bus attention — the
    /// trait-object face of [`CoreEngine::run_until`].
    fn exec(
        &mut self,
        bus: &mut dyn DataBus,
        coproc: &mut dyn Coprocessor,
        event_mask: u32,
        max_cycles: u64,
    ) -> Executed;

    /// Loads a program image and resets the PC to its entry.
    fn load_program(&mut self, program: &Program);

    /// Sets the hart id visible to the guest via `mhartid`.
    fn set_hart_id(&mut self, hart: u32);

    /// The hart id (`mhartid`).
    fn hart_id(&self) -> u32;

    /// Whether the guest has halted (`ebreak`/`ecall`).
    fn halted(&self) -> bool;

    /// Total instructions retired since reset.
    fn retired(&self) -> u64;

    /// Current cycle count.
    fn cycle(&self) -> u64;

    /// Current program counter.
    fn pc(&self) -> u32;

    /// Display name of the modelled core.
    fn core_name(&self) -> &'static str;

    /// Turns guest PC profiling on (fresh bins) or off. Profiling never
    /// changes timing or architectural behaviour. Default: unsupported
    /// no-op (the golden executor has no cycle model worth profiling).
    fn set_profiling(&mut self, on: bool) {
        let _ = on;
    }

    /// Takes the accumulated cycle-per-PC profile, turning profiling off.
    /// Default: `None` (profiling unsupported).
    fn take_profile(&mut self) -> Option<PcProfile> {
        None
    }

    /// Attaches or detaches the basic-block translation cache, when the
    /// core supports one. Bit-identical timing either way — this only
    /// trades host-side translation work for faster batched execution.
    /// Default: unsupported no-op.
    fn set_block_cache(&mut self, on: bool) {
        let _ = on;
    }
}

impl CpuCore for CoreEngine {
    fn step(&mut self, bus: &mut dyn DataBus, coproc: &mut dyn Coprocessor) -> Executed {
        if CoreEngine::halted(self) {
            return Executed {
                cycles: 0,
                instructions: 0,
                event: None,
                stop: StopReason::Budget,
            };
        }
        let before = CoreEngine::retired(self);
        let out = CoreEngine::step(self, bus, coproc);
        Executed {
            cycles: 1,
            instructions: CoreEngine::retired(self) - before,
            event: out.event,
            stop: if out.event.is_some() {
                StopReason::Event
            } else if out.custom {
                StopReason::CustomExecuted
            } else {
                StopReason::Budget
            },
        }
    }

    fn exec(
        &mut self,
        bus: &mut dyn DataBus,
        coproc: &mut dyn Coprocessor,
        event_mask: u32,
        max_cycles: u64,
    ) -> Executed {
        let before = CoreEngine::retired(self);
        let exit = self.run_until(bus, coproc, event_mask, max_cycles);
        Executed {
            cycles: exit.cycles,
            instructions: CoreEngine::retired(self) - before,
            event: exit.event,
            stop: exit.reason,
        }
    }

    fn load_program(&mut self, program: &Program) {
        CoreEngine::load_program(self, program);
    }

    fn set_hart_id(&mut self, hart: u32) {
        self.state.csrs.mhartid = hart;
    }

    fn hart_id(&self) -> u32 {
        self.state.csrs.mhartid
    }

    fn halted(&self) -> bool {
        CoreEngine::halted(self)
    }

    fn retired(&self) -> u64 {
        CoreEngine::retired(self)
    }

    fn cycle(&self) -> u64 {
        CoreEngine::cycle(self)
    }

    fn pc(&self) -> u32 {
        self.state.pc
    }

    fn core_name(&self) -> &'static str {
        self.params.name
    }

    fn set_profiling(&mut self, on: bool) {
        CoreEngine::set_profiling(self, on);
    }

    fn take_profile(&mut self) -> Option<PcProfile> {
        CoreEngine::take_profile(self)
    }

    fn set_block_cache(&mut self, on: bool) {
        CoreEngine::set_block_cache(self, on);
    }
}

/// The golden architectural executor behind the [`CpuCore`] face: one
/// nominal cycle per instruction, interrupts polled at instruction
/// boundaries from the wrapped core's own `mip`/`mie`.
///
/// Custom instructions are delegated to the coprocessor through a private
/// scratch [`ArchState`] (the golden core keeps its registers itself), so
/// only *state-independent* coprocessors — ones that don't read or write
/// engine register banks in `exec_custom`, like the differential harness's
/// `ScratchCoproc` — compose correctly. The bus argument is unused: the
/// golden core owns its memory.
#[derive(Debug)]
pub struct GoldenCpu {
    /// The wrapped architectural executor (memory, CSRs, registers).
    pub golden: GoldenCore,
    scratch: ArchState,
    cycle: u64,
}

impl GoldenCpu {
    /// Wraps a fresh [`GoldenCore`] with the given memory windows.
    pub fn new(imem_base: u32, imem_size: u32, dmem_base: u32, dmem_size: u32) -> GoldenCpu {
        GoldenCpu {
            golden: GoldenCore::new(imem_base, imem_size, dmem_base, dmem_size),
            scratch: ArchState::new(imem_base),
            cycle: 0,
        }
    }

    fn step_once(&mut self, coproc: &mut dyn Coprocessor) -> Executed {
        if self.golden.halted() {
            return Executed {
                cycles: 0,
                instructions: 0,
                event: None,
                stop: StopReason::Budget,
            };
        }
        self.cycle += 1;
        if let Some(cause) = self.golden.take_interrupt() {
            return Executed {
                cycles: 1,
                instructions: 0,
                event: Some(CoreEvent::InterruptEntered { cause }),
                stop: StopReason::Event,
            };
        }
        let scratch = &mut self.scratch;
        let mut custom_fired = false;
        let mut custom = |op, rs1, rs2| {
            custom_fired = true;
            coproc.exec_custom(op, rs1, rs2, scratch)
        };
        let step = self.golden.step(&mut custom);
        let (instructions, event) = match step {
            GoldenStep::Retired => (1, None),
            GoldenStep::Trap(cause) => (0, Some(CoreEvent::ExceptionEntered { cause })),
            // The halting `ebreak`/`ecall` itself retires.
            GoldenStep::Halted => (1, Some(CoreEvent::Halted)),
        };
        Executed {
            cycles: 1,
            instructions,
            event,
            stop: if event.is_some() {
                StopReason::Event
            } else if custom_fired {
                StopReason::CustomExecuted
            } else {
                StopReason::Budget
            },
        }
    }
}

impl CpuCore for GoldenCpu {
    fn step(&mut self, _bus: &mut dyn DataBus, coproc: &mut dyn Coprocessor) -> Executed {
        self.step_once(coproc)
    }

    fn exec(
        &mut self,
        _bus: &mut dyn DataBus,
        coproc: &mut dyn Coprocessor,
        event_mask: u32,
        max_cycles: u64,
    ) -> Executed {
        let mut total = Executed {
            cycles: 0,
            instructions: 0,
            event: None,
            stop: StopReason::Budget,
        };
        while total.cycles < max_cycles {
            let one = self.step_once(coproc);
            if one.cycles == 0 {
                break;
            }
            total.cycles += one.cycles;
            total.instructions += one.instructions;
            if let Some(ev) = one.event {
                if crate::engine::event_bit(ev) & event_mask != 0 {
                    total.event = Some(ev);
                    total.stop = StopReason::Event;
                    return total;
                }
                // A masked-out Halted still ends execution (nothing more
                // will retire), matching `run_until`'s budget exit.
                if ev == CoreEvent::Halted {
                    break;
                }
            }
            if one.stop == StopReason::CustomExecuted {
                total.event = one.event;
                total.stop = StopReason::CustomExecuted;
                return total;
            }
        }
        total
    }

    fn load_program(&mut self, program: &Program) {
        self.golden.load_program(program);
    }

    fn set_hart_id(&mut self, hart: u32) {
        self.golden.mhartid = hart;
    }

    fn hart_id(&self) -> u32 {
        self.golden.mhartid
    }

    fn halted(&self) -> bool {
        self.golden.halted()
    }

    fn retired(&self) -> u64 {
        self.golden.retired()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn pc(&self) -> u32 {
        self.golden.pc
    }

    fn core_name(&self) -> &'static str {
        "Golden"
    }
}

/// Builds a boxed timing hart of the given kind — the trait-object
/// counterpart of [`make_engine`].
pub fn make_cpu(kind: CoreKind, imem_base: u32, imem_size: u32) -> Box<dyn CpuCore> {
    Box::new(make_engine(kind, imem_base, imem_size))
}

/// Builds a boxed golden hart over the given memory windows.
pub fn make_golden_cpu(
    imem_base: u32,
    imem_size: u32,
    dmem_base: u32,
    dmem_size: u32,
) -> Box<dyn CpuCore> {
    Box::new(GoldenCpu::new(imem_base, imem_size, dmem_base, dmem_size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coproc::NullCoprocessor;
    use crate::engine::{stop_events, BusResponse};
    use rvsim_isa::{csr, Asm, Reg};
    use rvsim_mem::{AccessSize, Mem};

    /// Word-addressed SRAM with no extra latency — enough for programs
    /// that only load/store data.
    struct SramBus {
        mem: Mem,
    }

    impl DataBus for SramBus {
        fn core_access(&mut self, addr: u32, size: AccessSize, write: Option<u32>) -> BusResponse {
            let data = match write {
                Some(v) => {
                    self.mem.write(addr, size, v);
                    0
                }
                None => self.mem.read(addr, size),
            };
            BusResponse {
                data,
                extra_latency: 0,
            }
        }

        fn unit_access(&mut self, _addr: u32, _write: Option<u32>) -> Option<u32> {
            None
        }
    }

    const DMEM_BASE: u32 = 0x2000_0000;

    fn sum_program() -> Program {
        // Sum 1..=10 into a1, store it, read mhartid into a2, store it,
        // halt.
        let mut a = Asm::new(0);
        a.li(Reg::A0, 10);
        a.li(Reg::A1, 0);
        a.label("loop");
        a.add(Reg::A1, Reg::A1, Reg::A0);
        a.addi(Reg::A0, Reg::A0, -1);
        a.bne(Reg::A0, Reg::Zero, "loop");
        a.li(Reg::T0, DMEM_BASE as i32);
        a.sw(Reg::A1, 0, Reg::T0);
        a.csrr(Reg::A2, csr::MHARTID);
        a.sw(Reg::A2, 4, Reg::T0);
        a.ebreak();
        a.finish().unwrap()
    }

    fn all_cpus() -> Vec<Box<dyn CpuCore>> {
        let mut cpus: Vec<Box<dyn CpuCore>> = CoreKind::ALL
            .iter()
            .map(|&k| make_cpu(k, 0, 0x1000))
            .collect();
        cpus.push(make_golden_cpu(0, 0x1000, DMEM_BASE, 0x1000));
        cpus
    }

    #[test]
    fn every_cpu_runs_the_same_program_to_the_same_answer() {
        let program = sum_program();
        for mut cpu in all_cpus() {
            let mut bus = SramBus {
                mem: Mem::new(DMEM_BASE, 0x1000),
            };
            let mut coproc = NullCoprocessor;
            cpu.load_program(&program);
            cpu.set_hart_id(3);
            assert_eq!(cpu.hart_id(), 3, "{}", cpu.core_name());
            let out = cpu.exec(&mut bus, &mut coproc, stop_events::HALTED, 10_000);
            assert_eq!(
                out.event,
                Some(CoreEvent::Halted),
                "{} did not halt",
                cpu.core_name()
            );
            assert_eq!(out.stop, StopReason::Event, "{}", cpu.core_name());
            assert!(cpu.halted(), "{}", cpu.core_name());
            assert_eq!(out.instructions, cpu.retired(), "{}", cpu.core_name());
            assert!(out.cycles >= out.instructions, "{}", cpu.core_name());
            // The golden core owns its memory; the engines go through the
            // bus. Check whichever holds the result.
            let sum = bus.mem.read(DMEM_BASE, AccessSize::Word);
            let hart = bus.mem.read(DMEM_BASE + 4, AccessSize::Word);
            assert!(
                (sum, hart) == (55, 3) || (sum, hart) == (0, 0),
                "{}: bus holds ({sum}, {hart})",
                cpu.core_name()
            );
            if sum == 0 {
                // Golden path: results live in its private memory.
                continue;
            }
            assert_eq!((sum, hart), (55, 3), "{}", cpu.core_name());
        }
    }

    #[test]
    fn golden_cpu_results_land_in_its_own_memory() {
        let program = sum_program();
        let mut cpu = GoldenCpu::new(0, 0x1000, DMEM_BASE, 0x1000);
        cpu.golden.mhartid = 2;
        let mut bus = SramBus {
            mem: Mem::new(DMEM_BASE, 0x1000),
        };
        let mut coproc = NullCoprocessor;
        CpuCore::load_program(&mut cpu, &program);
        let out = CpuCore::exec(&mut cpu, &mut bus, &mut coproc, stop_events::HALTED, 10_000);
        assert_eq!(out.event, Some(CoreEvent::Halted));
        assert_eq!(cpu.golden.mem.read(DMEM_BASE, AccessSize::Word), 55);
        assert_eq!(cpu.golden.mem.read(DMEM_BASE + 4, AccessSize::Word), 2);
    }

    #[test]
    fn stepping_matches_exec_for_the_timing_engines() {
        let program = sum_program();
        for kind in CoreKind::ALL {
            let mut batched = make_cpu(kind, 0, 0x1000);
            let mut stepped = make_cpu(kind, 0, 0x1000);
            batched.load_program(&program);
            stepped.load_program(&program);
            let mut coproc = NullCoprocessor;
            let mut bus_a = SramBus {
                mem: Mem::new(DMEM_BASE, 0x1000),
            };
            let mut bus_b = SramBus {
                mem: Mem::new(DMEM_BASE, 0x1000),
            };
            let out = batched.exec(&mut bus_a, &mut coproc, stop_events::HALTED, 10_000);
            let mut cycles = 0;
            while !stepped.halted() && cycles < 10_000 {
                cycles += stepped.step(&mut bus_b, &mut coproc).cycles;
            }
            assert_eq!(out.cycles, cycles, "{kind}");
            assert_eq!(batched.retired(), stepped.retired(), "{kind}");
            assert_eq!(
                bus_a.mem.read(DMEM_BASE, AccessSize::Word),
                bus_b.mem.read(DMEM_BASE, AccessSize::Word),
                "{kind}"
            );
        }
    }

    #[test]
    fn exec_respects_the_cycle_budget() {
        for mut cpu in all_cpus() {
            let program = sum_program();
            cpu.load_program(&program);
            let mut bus = SramBus {
                mem: Mem::new(DMEM_BASE, 0x1000),
            };
            let mut coproc = NullCoprocessor;
            let out = cpu.exec(&mut bus, &mut coproc, stop_events::ALL, 3);
            assert!(out.cycles <= 3, "{}", cpu.core_name());
            assert_eq!(out.stop, StopReason::Budget, "{}", cpu.core_name());
            assert!(!cpu.halted(), "{}", cpu.core_name());
        }
    }

    #[test]
    fn halted_cpu_steps_consume_nothing() {
        let program = sum_program();
        for mut cpu in all_cpus() {
            cpu.load_program(&program);
            let mut bus = SramBus {
                mem: Mem::new(DMEM_BASE, 0x1000),
            };
            let mut coproc = NullCoprocessor;
            cpu.exec(&mut bus, &mut coproc, stop_events::HALTED, 10_000);
            let cycle = cpu.cycle();
            let out = cpu.step(&mut bus, &mut coproc);
            assert_eq!(out.cycles, 0, "{}", cpu.core_name());
            assert_eq!(cpu.cycle(), cycle, "{}", cpu.core_name());
        }
    }
}
