//! Machine-mode CSR file.

use rvsim_isa::csr;
use rvsim_snapshot::{self as snap, Json, SnapError};

/// The machine-mode CSRs used by the FreeRTOS execution scenario.
///
/// `mstatus` and `mepc` are part of every task context (paper §3); the
/// others drive trap handling. `mcycle` mirrors the system cycle counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csrs {
    /// Machine status (only MIE/MPIE/MPP modelled).
    pub mstatus: u32,
    /// Machine interrupt enable.
    pub mie: u32,
    /// Machine interrupt pending (set by the platform each cycle).
    pub mip: u32,
    /// Trap vector base address (direct mode).
    pub mtvec: u32,
    /// Exception PC.
    pub mepc: u32,
    /// Trap cause.
    pub mcause: u32,
    /// Scratch register.
    pub mscratch: u32,
    /// Cycle counter (read-only from guest code).
    pub mcycle: u32,
    /// Hardware thread id (read-only; set by the SMP composition).
    pub mhartid: u32,
}

impl Csrs {
    /// Reads a CSR by address. Unknown addresses read as zero (this model
    /// does not trap on CSR access).
    pub fn read(&self, addr: u16) -> u32 {
        match addr {
            csr::MSTATUS => self.mstatus,
            csr::MIE => self.mie,
            csr::MIP => self.mip,
            csr::MTVEC => self.mtvec,
            csr::MEPC => self.mepc,
            csr::MCAUSE => self.mcause,
            csr::MSCRATCH => self.mscratch,
            csr::MCYCLE => self.mcycle,
            csr::MHARTID => self.mhartid,
            _ => 0,
        }
    }

    /// Writes a CSR by address. Read-only and unknown CSRs ignore writes.
    pub fn write(&mut self, addr: u16, value: u32) {
        match addr {
            csr::MSTATUS => self.mstatus = value,
            csr::MIE => self.mie = value,
            // mip is wholly platform-controlled in this model.
            csr::MIP => {}
            csr::MTVEC => self.mtvec = value & !0b11,
            csr::MEPC => self.mepc = value & !0b1,
            csr::MCAUSE => self.mcause = value,
            csr::MSCRATCH => self.mscratch = value,
            csr::MCYCLE | csr::MHARTID => {}
            _ => {}
        }
    }

    /// Whether machine interrupts are globally enabled.
    pub fn mie_enabled(&self) -> bool {
        self.mstatus & csr::MSTATUS_MIE != 0
    }

    /// The highest-priority pending-and-enabled interrupt cause, if any
    /// (external > software > timer, per the RISC-V priority order).
    pub fn pending_interrupt(&self) -> Option<u32> {
        let active = self.mip & self.mie;
        if active & csr::MIP_MEIP != 0 {
            Some(csr::CAUSE_EXTERNAL)
        } else if active & csr::MIP_MSIP != 0 {
            Some(csr::CAUSE_SOFTWARE)
        } else if active & csr::MIP_MTIP != 0 {
            Some(csr::CAUSE_TIMER)
        } else {
            None
        }
    }

    /// Performs the architectural side of interrupt entry: saves `pc` to
    /// `mepc`, records `cause`, stashes MIE into MPIE and clears MIE.
    /// Returns the trap-vector target.
    pub fn enter_trap(&mut self, pc: u32, cause: u32) -> u32 {
        self.mepc = pc;
        self.mcause = cause;
        let mie = (self.mstatus >> 3) & 1;
        self.mstatus = (self.mstatus & !(csr::MSTATUS_MIE | csr::MSTATUS_MPIE))
            | (mie << 7)
            | csr::MSTATUS_MPP;
        self.mtvec
    }

    /// Performs the architectural side of `mret`: restores MIE from MPIE
    /// and returns the resume address (`mepc`).
    pub fn exit_trap(&mut self) -> u32 {
        let mpie = (self.mstatus >> 7) & 1;
        self.mstatus = (self.mstatus & !csr::MSTATUS_MIE) | (mpie << 3) | csr::MSTATUS_MPIE;
        self.mepc
    }

    /// Serializes every CSR field for a machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        Json::object()
            .with("mstatus", self.mstatus)
            .with("mie", self.mie)
            .with("mip", self.mip)
            .with("mtvec", self.mtvec)
            .with("mepc", self.mepc)
            .with("mcause", self.mcause)
            .with("mscratch", self.mscratch)
            .with("mcycle", self.mcycle)
            .with("mhartid", self.mhartid)
    }

    /// Rebuilds the CSR file from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on missing or non-integer fields.
    pub fn from_snap(value: &Json) -> Result<Csrs, SnapError> {
        Ok(Csrs {
            mstatus: snap::get_u32(value, "mstatus")?,
            mie: snap::get_u32(value, "mie")?,
            mip: snap::get_u32(value, "mip")?,
            mtvec: snap::get_u32(value, "mtvec")?,
            mepc: snap::get_u32(value, "mepc")?,
            mcause: snap::get_u32(value, "mcause")?,
            mscratch: snap::get_u32(value, "mscratch")?,
            mcycle: snap::get_u32(value, "mcycle")?,
            mhartid: snap::get_u32(value, "mhartid")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_entry_and_exit_toggle_mie() {
        let mut c = Csrs {
            mstatus: csr::MSTATUS_MIE,
            mtvec: 0x100,
            ..Csrs::default()
        };
        let target = c.enter_trap(0x2000, csr::CAUSE_TIMER);
        assert_eq!(target, 0x100);
        assert_eq!(c.mepc, 0x2000);
        assert!(!c.mie_enabled());
        assert_eq!(c.mstatus & csr::MSTATUS_MPIE, csr::MSTATUS_MPIE);
        let resume = c.exit_trap();
        assert_eq!(resume, 0x2000);
        assert!(c.mie_enabled());
    }

    #[test]
    fn interrupt_priority_order() {
        let mut c = Csrs {
            mie: csr::MIP_MTIP | csr::MIP_MSIP | csr::MIP_MEIP,
            ..Csrs::default()
        };
        c.mip = csr::MIP_MTIP;
        assert_eq!(c.pending_interrupt(), Some(csr::CAUSE_TIMER));
        c.mip |= csr::MIP_MSIP;
        assert_eq!(c.pending_interrupt(), Some(csr::CAUSE_SOFTWARE));
        c.mip |= csr::MIP_MEIP;
        assert_eq!(c.pending_interrupt(), Some(csr::CAUSE_EXTERNAL));
    }

    #[test]
    fn masked_interrupts_do_not_fire() {
        let mut c = Csrs {
            mip: csr::MIP_MTIP,
            ..Csrs::default()
        };
        assert_eq!(c.pending_interrupt(), None);
        c.mie = csr::MIP_MTIP;
        assert_eq!(c.pending_interrupt(), Some(csr::CAUSE_TIMER));
    }

    #[test]
    fn mip_write_is_ignored() {
        let mut c = Csrs::default();
        c.write(csr::MIP, 0xffff_ffff);
        assert_eq!(c.mip, 0);
    }
}
