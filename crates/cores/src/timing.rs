//! Per-core timing parameters.

/// Static timing description of one core model.
///
/// The three presets correspond to the cores of paper §3; see
/// `DESIGN.md` §5 for the fidelity statement. All values are cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// Human-readable core name.
    pub name: &'static str,
    /// Extra cycles for a taken branch when no predictor is present,
    /// or for a mispredicted branch when one is.
    pub branch_penalty: u32,
    /// Extra cycles for `jal`.
    pub jump_penalty: u32,
    /// Extra cycles for `jalr` (indirect target).
    pub jalr_penalty: u32,
    /// Total cycles for a multiply.
    pub mul_latency: u32,
    /// Total cycles for a divide/remainder.
    pub div_latency: u32,
    /// Total cycles for a CSR access (serialising on bigger cores).
    pub csr_latency: u32,
    /// Base cycles for an RTOSUnit custom instruction (the out-of-order
    /// core pays extra for the in-order commit queue of §5.3, Fig. 6).
    pub custom_latency: u32,
    /// Base cycles of a store (port occupancy is charged separately).
    pub store_latency: u32,
    /// Base cycles of a load before memory latency is added.
    pub load_base_latency: u32,
    /// Pipeline-flush cycles on interrupt entry.
    pub irq_entry_latency: u32,
    /// Cycles for `mret` (pipeline refill).
    pub mret_latency: u32,
    /// Whether two independent simple ALU instructions can retire per
    /// cycle (superscalar approximation for NaxRiscv).
    pub dual_issue: bool,
    /// Whether a 2-bit branch predictor is modelled.
    pub has_predictor: bool,
}

impl TimingParams {
    /// CV32E40P-class: 4-stage in-order microcontroller core.
    pub fn cv32e40p() -> TimingParams {
        TimingParams {
            name: "CV32E40P",
            branch_penalty: 2,
            jump_penalty: 1,
            jalr_penalty: 2,
            mul_latency: 1,
            div_latency: 34,
            csr_latency: 1,
            custom_latency: 1,
            store_latency: 1,
            load_base_latency: 1,
            irq_entry_latency: 4,
            mret_latency: 4,
            dual_issue: false,
            has_predictor: false,
        }
    }

    /// CVA6-class: 6-stage application core, in-order issue with
    /// out-of-order write-back and a branch predictor.
    pub fn cva6() -> TimingParams {
        TimingParams {
            name: "CVA6",
            branch_penalty: 5,
            jump_penalty: 1,
            jalr_penalty: 3,
            mul_latency: 2,
            div_latency: 20,
            csr_latency: 3,
            custom_latency: 2,
            store_latency: 1,
            load_base_latency: 1,
            irq_entry_latency: 8,
            mret_latency: 7,
            dual_issue: false,
            has_predictor: true,
        }
    }

    /// NaxRiscv-class: superscalar out-of-order core. The commit queue for
    /// custom instructions (paper Fig. 6) shows up as `custom_latency`.
    pub fn naxriscv() -> TimingParams {
        TimingParams {
            name: "NaxRiscv",
            branch_penalty: 11,
            jump_penalty: 0,
            jalr_penalty: 2,
            mul_latency: 3,
            div_latency: 20,
            csr_latency: 5,
            custom_latency: 3,
            store_latency: 1,
            load_base_latency: 1,
            irq_entry_latency: 12,
            mret_latency: 10,
            dual_issue: true,
            has_predictor: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_complexity() {
        let cv = TimingParams::cv32e40p();
        let cva = TimingParams::cva6();
        let nax = TimingParams::naxriscv();
        assert!(cv.irq_entry_latency < cva.irq_entry_latency);
        assert!(cva.irq_entry_latency < nax.irq_entry_latency);
        assert!(!cv.dual_issue && nax.dual_issue);
        assert!(!cv.has_predictor && cva.has_predictor && nax.has_predictor);
    }
}
