//! Functional execution of RV32IM_Zicsr instructions.
//!
//! The executor computes the architectural effect of one instruction on an
//! [`ArchState`]. Memory accesses and custom instructions are *not*
//! performed here — they are returned as requests so the cycle-stepped
//! engine can charge timing and route them to the data bus / coprocessor.

use crate::state::ArchState;
use rvsim_isa::instr::{AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp};
use rvsim_isa::{CustomOp, Reg};
use rvsim_mem::AccessSize;

/// A data-memory request produced by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRequest {
    /// Load into `rd`. `signed` selects sign extension of sub-word data.
    Load {
        addr: u32,
        size: AccessSize,
        signed: bool,
        rd: Reg,
    },
    /// Store `value`.
    Store {
        addr: u32,
        size: AccessSize,
        value: u32,
    },
}

/// Non-memory outcome of functionally executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Address of the next instruction (branches/jumps resolved; `mret`
    /// resolved to `mepc`).
    pub next_pc: u32,
    /// Pending memory request, if any.
    pub mem: Option<MemRequest>,
    /// Custom instruction to forward to the coprocessor:
    /// `(op, rs1 value, rs2 value, rd)`.
    pub custom: Option<(CustomOp, u32, u32, Reg)>,
    /// Whether a branch was taken (for branch-penalty accounting).
    pub taken_branch: bool,
    /// Whether this instruction was `mret`.
    pub is_mret: bool,
    /// Whether this instruction was `wfi`.
    pub is_wfi: bool,
    /// Whether this instruction halts the simulation (`ebreak`).
    pub halt: bool,
}

impl Outcome {
    fn fall_through(pc: u32) -> Outcome {
        Outcome {
            next_pc: pc.wrapping_add(4),
            mem: None,
            custom: None,
            taken_branch: false,
            is_mret: false,
            is_wfi: false,
            halt: false,
        }
    }
}

pub(crate) fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1f),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1f),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

#[allow(
    clippy::manual_div_ceil,
    clippy::if_then_some_else_none,
    clippy::manual_ok_err
)]
#[allow(clippy::collapsible_else_if)]
#[allow(clippy::manual_unwrap_or_default)]
#[allow(clippy::manual_checked_ops)]
pub(crate) fn muldiv(op: MulDivOp, a: u32, b: u32) -> u32 {
    match op {
        MulDivOp::Mul => a.wrapping_mul(b),
        MulDivOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        MulDivOp::Mulhsu => (((a as i32 as i64) * (b as i64)) >> 32) as u32,
        MulDivOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        MulDivOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        MulDivOp::Divu => {
            if b == 0 {
                u32::MAX
            } else {
                a / b
            }
        }
        MulDivOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        MulDivOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

pub(crate) fn branch_taken(op: BranchOp, a: u32, b: u32) -> bool {
    match op {
        BranchOp::Eq => a == b,
        BranchOp::Ne => a != b,
        BranchOp::Lt => (a as i32) < (b as i32),
        BranchOp::Ge => (a as i32) >= (b as i32),
        BranchOp::Ltu => a < b,
        BranchOp::Geu => a >= b,
    }
}

/// Functionally executes `instr` located at `pc`, applying register and CSR
/// effects directly to `state` and returning everything the timing engine
/// needs. Loads do **not** write `rd` here — the engine writes it once the
/// data bus responds (see [`MemRequest::Load`]).
pub fn execute(state: &mut ArchState, instr: &Instr, pc: u32) -> Outcome {
    let mut out = Outcome::fall_through(pc);
    match *instr {
        Instr::Lui { rd, imm } => state.write_reg(rd, imm),
        Instr::Auipc { rd, imm } => state.write_reg(rd, pc.wrapping_add(imm)),
        Instr::Jal { rd, offset } => {
            state.write_reg(rd, pc.wrapping_add(4));
            out.next_pc = pc.wrapping_add(offset as u32);
        }
        Instr::Jalr { rd, rs1, offset } => {
            let target = state.read_reg(rs1).wrapping_add(offset as u32) & !1;
            state.write_reg(rd, pc.wrapping_add(4));
            out.next_pc = target;
        }
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            if branch_taken(op, state.read_reg(rs1), state.read_reg(rs2)) {
                out.next_pc = pc.wrapping_add(offset as u32);
                out.taken_branch = true;
            }
        }
        Instr::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            let addr = state.read_reg(rs1).wrapping_add(offset as u32);
            let (size, signed) = match op {
                LoadOp::Lb => (AccessSize::Byte, true),
                LoadOp::Lbu => (AccessSize::Byte, false),
                LoadOp::Lh => (AccessSize::Half, true),
                LoadOp::Lhu => (AccessSize::Half, false),
                LoadOp::Lw => (AccessSize::Word, false),
            };
            out.mem = Some(MemRequest::Load {
                addr,
                size,
                signed,
                rd,
            });
        }
        Instr::Store {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let addr = state.read_reg(rs1).wrapping_add(offset as u32);
            let size = match op {
                StoreOp::Sb => AccessSize::Byte,
                StoreOp::Sh => AccessSize::Half,
                StoreOp::Sw => AccessSize::Word,
            };
            out.mem = Some(MemRequest::Store {
                addr,
                size,
                value: state.read_reg(rs2),
            });
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            state.write_reg(rd, alu(op, state.read_reg(rs1), imm as u32));
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            state.write_reg(rd, alu(op, state.read_reg(rs1), state.read_reg(rs2)));
        }
        Instr::MulDiv { op, rd, rs1, rs2 } => {
            state.write_reg(rd, muldiv(op, state.read_reg(rs1), state.read_reg(rs2)));
        }
        Instr::Csr { op, rd, csr, src } => {
            let old = state.csrs.read(csr);
            let operand = if op.is_immediate() {
                u32::from(src)
            } else {
                state.read_reg(Reg::from_number(src))
            };
            let new = match op {
                CsrOp::Rw | CsrOp::Rwi => Some(operand),
                CsrOp::Rs | CsrOp::Rsi => (operand != 0).then_some(old | operand),
                CsrOp::Rc | CsrOp::Rci => (operand != 0).then_some(old & !operand),
            };
            if let Some(v) = new {
                state.csrs.write(csr, v);
            }
            state.write_reg(rd, old);
        }
        Instr::Mret => {
            out.next_pc = state.csrs.exit_trap();
            out.is_mret = true;
        }
        Instr::Wfi => {
            out.is_wfi = true;
        }
        Instr::Ecall | Instr::Ebreak => {
            out.halt = true;
        }
        Instr::Fence => {}
        Instr::Custom { op, rd, rs1, rs2 } => {
            out.custom = Some((op, state.read_reg(rs1), state.read_reg(rs2), rd));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_isa::csr;

    fn fresh() -> ArchState {
        ArchState::new(0x1000)
    }

    #[test]
    fn alu_basics() {
        let mut s = fresh();
        s.write_reg(Reg::A1, 7);
        execute(
            &mut s,
            &Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                imm: -3,
            },
            0,
        );
        assert_eq!(s.read_reg(Reg::A0), 4);
        execute(
            &mut s,
            &Instr::Op {
                op: AluOp::Sub,
                rd: Reg::A2,
                rs1: Reg::A0,
                rs2: Reg::A1,
            },
            0,
        );
        assert_eq!(s.read_reg(Reg::A2) as i32, -3);
    }

    #[test]
    fn shifts_and_compares() {
        let mut s = fresh();
        s.write_reg(Reg::A0, 0x8000_0000);
        execute(
            &mut s,
            &Instr::OpImm {
                op: AluOp::Sra,
                rd: Reg::A1,
                rs1: Reg::A0,
                imm: 4,
            },
            0,
        );
        assert_eq!(s.read_reg(Reg::A1), 0xF800_0000);
        execute(
            &mut s,
            &Instr::OpImm {
                op: AluOp::Srl,
                rd: Reg::A2,
                rs1: Reg::A0,
                imm: 4,
            },
            0,
        );
        assert_eq!(s.read_reg(Reg::A2), 0x0800_0000);
        execute(
            &mut s,
            &Instr::OpImm {
                op: AluOp::Slt,
                rd: Reg::A3,
                rs1: Reg::A0,
                imm: 0,
            },
            0,
        );
        assert_eq!(s.read_reg(Reg::A3), 1); // negative < 0
        execute(
            &mut s,
            &Instr::OpImm {
                op: AluOp::Sltu,
                rd: Reg::A4,
                rs1: Reg::A0,
                imm: 0,
            },
            0,
        );
        assert_eq!(s.read_reg(Reg::A4), 0);
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(muldiv(MulDivOp::Div, 10, 0), u32::MAX);
        assert_eq!(muldiv(MulDivOp::Rem, 10, 0), 10);
        assert_eq!(muldiv(MulDivOp::Div, 0x8000_0000, u32::MAX), 0x8000_0000);
        assert_eq!(muldiv(MulDivOp::Rem, 0x8000_0000, u32::MAX), 0);
        assert_eq!(muldiv(MulDivOp::Divu, 7, 2), 3);
        assert_eq!(muldiv(MulDivOp::Mulh, 0x8000_0000, 2), 0xFFFF_FFFF);
    }

    #[test]
    fn jal_links_and_jumps() {
        let mut s = fresh();
        let out = execute(
            &mut s,
            &Instr::Jal {
                rd: Reg::Ra,
                offset: 0x40,
            },
            0x1000,
        );
        assert_eq!(s.read_reg(Reg::Ra), 0x1004);
        assert_eq!(out.next_pc, 0x1040);
    }

    #[test]
    fn jalr_clears_low_bit() {
        let mut s = fresh();
        s.write_reg(Reg::A0, 0x2001);
        let out = execute(
            &mut s,
            &Instr::Jalr {
                rd: Reg::Zero,
                rs1: Reg::A0,
                offset: 0,
            },
            0,
        );
        assert_eq!(out.next_pc, 0x2000);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let mut s = fresh();
        s.write_reg(Reg::A0, 1);
        let t = execute(
            &mut s,
            &Instr::Branch {
                op: BranchOp::Ne,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                offset: -16,
            },
            0x1000,
        );
        assert!(t.taken_branch);
        assert_eq!(t.next_pc, 0x0FF0);
        let n = execute(
            &mut s,
            &Instr::Branch {
                op: BranchOp::Eq,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                offset: -16,
            },
            0x1000,
        );
        assert!(!n.taken_branch);
        assert_eq!(n.next_pc, 0x1004);
    }

    #[test]
    fn loads_are_deferred_to_the_bus() {
        let mut s = fresh();
        s.write_reg(Reg::Sp, 0x2000_0100);
        let out = execute(
            &mut s,
            &Instr::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::Sp,
                offset: 8,
            },
            0,
        );
        assert_eq!(
            out.mem,
            Some(MemRequest::Load {
                addr: 0x2000_0108,
                size: AccessSize::Word,
                signed: false,
                rd: Reg::A0
            })
        );
        // rd untouched until the bus responds.
        assert_eq!(s.read_reg(Reg::A0), 0);
    }

    #[test]
    fn csr_read_write() {
        let mut s = fresh();
        s.write_reg(Reg::A0, 0xAB);
        execute(
            &mut s,
            &Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::A1,
                csr: csr::MSCRATCH,
                src: Reg::A0.number(),
            },
            0,
        );
        assert_eq!(s.csrs.mscratch, 0xAB);
        assert_eq!(s.read_reg(Reg::A1), 0);
        // csrrs with x0 must not write.
        s.csrs.mscratch = 0x55;
        execute(
            &mut s,
            &Instr::Csr {
                op: CsrOp::Rs,
                rd: Reg::A2,
                csr: csr::MSCRATCH,
                src: 0,
            },
            0,
        );
        assert_eq!(s.read_reg(Reg::A2), 0x55);
        assert_eq!(s.csrs.mscratch, 0x55);
    }

    #[test]
    fn mret_resumes_at_mepc() {
        let mut s = fresh();
        s.csrs.enter_trap(0x4444, csr::CAUSE_TIMER);
        let out = execute(&mut s, &Instr::Mret, 0x100);
        assert!(out.is_mret);
        assert_eq!(out.next_pc, 0x4444);
        assert!(s.csrs.mie_enabled() || s.csrs.mstatus & csr::MSTATUS_MIE == 0);
    }

    #[test]
    fn custom_forwards_operand_values() {
        let mut s = fresh();
        s.write_reg(Reg::A0, 3);
        s.write_reg(Reg::A1, 9);
        let out = execute(
            &mut s,
            &Instr::Custom {
                op: CustomOp::AddReady,
                rd: Reg::Zero,
                rs1: Reg::A0,
                rs2: Reg::A1,
            },
            0,
        );
        assert_eq!(out.custom, Some((CustomOp::AddReady, 3, 9, Reg::Zero)));
    }
}
