//! The golden architectural executor.
//!
//! A deliberately minimal RV32IM_Zicsr interpreter — no pipeline, no
//! latencies, no caches, no dual issue, no register banks — used as the
//! reference side of the differential lockstep harness (`rvsim-check`).
//! Its execution semantics are written directly against the architecture
//! model documented in `DESIGN.md` and do **not** reuse
//! [`exec`](crate::exec), [`Csrs`](crate::csrs::Csrs) or
//! [`ArchState`](crate::state::ArchState): a bug in the shared executor
//! must show up as a divergence, not be faithfully reproduced on both
//! sides. Only the instruction *decoder* is shared (`rvsim_isa::decode` is
//! itself covered by encode/decode round-trip tests).
//!
//! Timing-dependent architectural state is out of scope by construction:
//! `mcycle` always reads zero here, and the program generator never reads
//! it. Custom RTOSUnit instructions are delegated to a caller-provided
//! functional model so both sides of the lockstep can share one.
//!
//! Interrupts are taken only when the driver asks
//! ([`GoldenCore::take_interrupt`]): which *cycle* an interrupt lands on is
//! timing, so the lockstep driver observes the engine's entry event and
//! demands the same entry — with the cause recomputed independently from
//! this core's own `mip`/`mie`/`mstatus` — at the same retire boundary.

use rvsim_isa::csr;
use rvsim_isa::instr::{AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp};
use rvsim_isa::{decode, CustomOp, Program, Reg};
use rvsim_mem::{AccessSize, Mem};

/// Result of one [`GoldenCore::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenStep {
    /// One instruction retired.
    Retired,
    /// A synchronous exception trapped (nothing retired); the value is the
    /// `mcause` code.
    Trap(u32),
    /// The core halted on `ecall`/`ebreak` (the halting instruction
    /// retires, matching the engine's accounting).
    Halted,
}

/// The functional model for RTOSUnit custom instructions: given the
/// operation and resolved operand values, returns the `rd` result (only
/// used when the op writes `rd`).
pub type CustomModel<'a> = dyn FnMut(CustomOp, u32, u32) -> u32 + 'a;

/// Architectural state and executor of the golden model.
#[derive(Debug, Clone)]
pub struct GoldenCore {
    regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// `mstatus` (raw; only MIE/MPIE/MPP are meaningful).
    pub mstatus: u32,
    /// `mie`.
    pub mie: u32,
    /// `mip` (set by the lockstep driver, mirroring the platform).
    pub mip: u32,
    /// `mtvec` (direct mode, low bits always clear).
    pub mtvec: u32,
    /// `mepc` (bit 0 always clear).
    pub mepc: u32,
    /// `mcause`.
    pub mcause: u32,
    /// `mscratch`.
    pub mscratch: u32,
    /// `mhartid` (read-only from guest code).
    pub mhartid: u32,
    /// Data memory (same window as the engine-side bus RAM).
    pub mem: Mem,
    imem: Mem,
    halted: bool,
    retired: u64,
}

impl GoldenCore {
    /// Creates a golden core with instruction memory at
    /// `imem_base..imem_base+imem_size` and data memory at
    /// `dmem_base..dmem_base+dmem_size`. The PC starts at `imem_base`.
    pub fn new(imem_base: u32, imem_size: u32, dmem_base: u32, dmem_size: u32) -> GoldenCore {
        GoldenCore {
            regs: [0; 32],
            pc: imem_base,
            mstatus: 0,
            mie: 0,
            mip: 0,
            mtvec: 0,
            mepc: 0,
            mcause: 0,
            mscratch: 0,
            mhartid: 0,
            mem: Mem::new(dmem_base, dmem_size),
            imem: Mem::new(imem_base, imem_size),
            halted: false,
            retired: 0,
        }
    }

    /// Loads a program and resets the PC to its base.
    pub fn load_program(&mut self, program: &Program) {
        self.imem.load_words(program.base, &program.words);
        self.pc = program.base;
    }

    /// Register value (`x0` reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.number() as usize]
    }

    fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::Zero {
            self.regs[r.number() as usize] = value;
        }
    }

    /// Writes a register from outside the executor (harness use: state
    /// seeding and deliberate fault injection in self-tests). Writes to
    /// `x0` are discarded.
    pub fn write_reg(&mut self, r: Reg, value: u32) {
        self.set_reg(r, value);
    }

    /// Whether the core halted on `ecall`/`ebreak`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Retired-instruction count.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Decodes the instruction the core would execute next, if the PC is
    /// aligned, in range and the word decodes (harness introspection).
    pub fn peek(&self) -> Option<Instr> {
        if self.pc & 3 != 0 || !self.imem.contains(self.pc) {
            return None;
        }
        decode(self.imem.read_word(self.pc)).ok()
    }

    /// Reads a CSR by address (same visibility rules as guest reads).
    pub fn csr(&self, addr: u16) -> u32 {
        self.csr_read(addr)
    }

    fn csr_read(&self, addr: u16) -> u32 {
        match addr {
            csr::MSTATUS => self.mstatus,
            csr::MIE => self.mie,
            csr::MIP => self.mip,
            csr::MTVEC => self.mtvec,
            csr::MEPC => self.mepc,
            csr::MCAUSE => self.mcause,
            csr::MSCRATCH => self.mscratch,
            // mcycle is timing — the golden model has no clock. The
            // generator never reads it; a stray read diverges loudly.
            csr::MCYCLE => 0,
            csr::MHARTID => self.mhartid,
            _ => 0,
        }
    }

    fn csr_write(&mut self, addr: u16, value: u32) {
        match addr {
            csr::MSTATUS => self.mstatus = value,
            csr::MIE => self.mie = value,
            // mip is platform-owned; mcycle and mhartid are read-only.
            csr::MIP | csr::MCYCLE | csr::MHARTID => {}
            csr::MTVEC => self.mtvec = value & !0b11,
            csr::MEPC => self.mepc = value & !0b1,
            csr::MCAUSE => self.mcause = value,
            csr::MSCRATCH => self.mscratch = value,
            _ => {}
        }
    }

    /// Architectural trap entry: `mepc` ← faulting/interrupted PC,
    /// `mcause` ← cause, MIE stashed into MPIE and cleared, MPP set to
    /// machine mode, PC ← `mtvec`.
    fn enter_trap(&mut self, pc: u32, cause: u32) {
        self.mepc = pc & !0b1;
        self.mcause = cause;
        let mie_was = self.mstatus & csr::MSTATUS_MIE != 0;
        self.mstatus &= !(csr::MSTATUS_MIE | csr::MSTATUS_MPIE);
        if mie_was {
            self.mstatus |= csr::MSTATUS_MPIE;
        }
        self.mstatus |= csr::MSTATUS_MPP;
        self.pc = self.mtvec;
    }

    /// Takes a pending-and-enabled interrupt if there is one, returning
    /// its cause. Priority: external > software > timer.
    pub fn take_interrupt(&mut self) -> Option<u32> {
        if self.mstatus & csr::MSTATUS_MIE == 0 {
            return None;
        }
        let active = self.mip & self.mie;
        let cause = if active & csr::MIP_MEIP != 0 {
            csr::CAUSE_EXTERNAL
        } else if active & csr::MIP_MSIP != 0 {
            csr::CAUSE_SOFTWARE
        } else if active & csr::MIP_MTIP != 0 {
            csr::CAUSE_TIMER
        } else {
            return None;
        };
        self.enter_trap(self.pc, cause);
        Some(cause)
    }

    /// Executes one instruction (or takes a misaligned-fetch/load/store
    /// exception). `custom` is the functional model for RTOSUnit
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics on an undecodable instruction word, a fetch outside
    /// instruction memory, or an aligned data access outside data memory —
    /// the constrained generator produces none of these, so any occurrence
    /// is a generator bug, not a counterexample.
    pub fn step(&mut self, custom: &mut CustomModel) -> GoldenStep {
        if self.halted {
            return GoldenStep::Halted;
        }
        let pc = self.pc;
        if pc & 3 != 0 {
            self.enter_trap(pc, csr::CAUSE_MISALIGNED_FETCH);
            return GoldenStep::Trap(csr::CAUSE_MISALIGNED_FETCH);
        }
        assert!(
            self.imem.contains(pc),
            "golden fetch outside instruction memory: {pc:#010x}"
        );
        let instr = decode(self.imem.read_word(pc))
            .unwrap_or_else(|e| panic!("golden decode failure at {pc:#010x}: {e}"));

        let mut next_pc = pc.wrapping_add(4);
        match instr {
            Instr::Lui { rd, imm } => self.set_reg(rd, imm),
            Instr::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm)),
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let size = match op {
                    LoadOp::Lb | LoadOp::Lbu => AccessSize::Byte,
                    LoadOp::Lh | LoadOp::Lhu => AccessSize::Half,
                    LoadOp::Lw => AccessSize::Word,
                };
                if !addr.is_multiple_of(size.bytes()) {
                    self.enter_trap(pc, csr::CAUSE_MISALIGNED_LOAD);
                    return GoldenStep::Trap(csr::CAUSE_MISALIGNED_LOAD);
                }
                let raw = self.mem.read(addr, size);
                let value = match op {
                    LoadOp::Lb => raw as u8 as i8 as i32 as u32,
                    LoadOp::Lbu => raw & 0xff,
                    LoadOp::Lh => raw as u16 as i16 as i32 as u32,
                    LoadOp::Lhu => raw & 0xffff,
                    LoadOp::Lw => raw,
                };
                self.set_reg(rd, value);
            }
            Instr::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let size = match op {
                    StoreOp::Sb => AccessSize::Byte,
                    StoreOp::Sh => AccessSize::Half,
                    StoreOp::Sw => AccessSize::Word,
                };
                if !addr.is_multiple_of(size.bytes()) {
                    self.enter_trap(pc, csr::CAUSE_MISALIGNED_STORE);
                    return GoldenStep::Trap(csr::CAUSE_MISALIGNED_STORE);
                }
                self.mem.write(addr, size, self.reg(rs2));
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let v = Self::alu(op, self.reg(rs1), imm as u32);
                self.set_reg(rd, v);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let v = Self::alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let v = Self::muldiv(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::Csr { op, rd, csr, src } => {
                let old = self.csr_read(csr);
                let operand = if op.is_immediate() {
                    u32::from(src)
                } else {
                    self.reg(Reg::from_number(src))
                };
                match op {
                    CsrOp::Rw | CsrOp::Rwi => self.csr_write(csr, operand),
                    CsrOp::Rs | CsrOp::Rsi if operand != 0 => self.csr_write(csr, old | operand),
                    CsrOp::Rc | CsrOp::Rci if operand != 0 => self.csr_write(csr, old & !operand),
                    _ => {}
                }
                self.set_reg(rd, old);
            }
            Instr::Mret => {
                let mpie_was = self.mstatus & csr::MSTATUS_MPIE != 0;
                self.mstatus &= !csr::MSTATUS_MIE;
                if mpie_was {
                    self.mstatus |= csr::MSTATUS_MIE;
                }
                self.mstatus |= csr::MSTATUS_MPIE;
                next_pc = self.mepc;
            }
            Instr::Wfi | Instr::Fence => {}
            Instr::Ecall | Instr::Ebreak => {
                self.pc = next_pc;
                self.retired += 1;
                self.halted = true;
                return GoldenStep::Halted;
            }
            Instr::Custom { op, rd, rs1, rs2 } => {
                let result = custom(op, self.reg(rs1), self.reg(rs2));
                if op.writes_rd() {
                    self.set_reg(rd, result);
                }
            }
        }
        self.pc = next_pc;
        self.retired += 1;
        GoldenStep::Retired
    }

    fn alu(op: AluOp, a: u32, b: u32) -> u32 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a << (b & 0x1f),
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Xor => a ^ b,
            AluOp::Srl => a >> (b & 0x1f),
            AluOp::Sra => ((a as i32) >> (b & 0x1f)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }

    fn muldiv(op: MulDivOp, a: u32, b: u32) -> u32 {
        let (sa, sb) = (a as i32 as i64, b as i32 as i64);
        match op {
            MulDivOp::Mul => a.wrapping_mul(b),
            MulDivOp::Mulh => ((sa * sb) >> 32) as u32,
            MulDivOp::Mulhsu => ((sa * b as i64) >> 32) as u32,
            MulDivOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
            // Division by zero and signed overflow follow the RISC-V
            // M-extension table: q = -1 / MIN, r = a / 0.
            MulDivOp::Div => {
                if b == 0 {
                    u32::MAX
                } else {
                    (sa as i32).wrapping_div(sb as i32) as u32
                }
            }
            MulDivOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            MulDivOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (sa as i32).wrapping_rem(sb as i32) as u32
                }
            }
            MulDivOp::Remu => a.checked_rem(b).unwrap_or(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_isa::Asm;

    fn no_custom() -> impl FnMut(CustomOp, u32, u32) -> u32 {
        |op, _, _| panic!("unexpected custom op {op}")
    }

    fn run(asm: Asm) -> GoldenCore {
        let prog = asm.finish().expect("assembly");
        let mut g = GoldenCore::new(0, 0x1_0000, 0x2000_0000, 0x1000);
        g.load_program(&prog);
        let mut custom = no_custom();
        for _ in 0..100_000 {
            if let GoldenStep::Halted = g.step(&mut custom) {
                return g;
            }
        }
        panic!("golden program did not halt");
    }

    #[test]
    fn computes_a_sum_loop() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 0);
        a.li(Reg::T0, 1);
        a.li(Reg::T1, 11);
        a.label("loop");
        a.add(Reg::A0, Reg::A0, Reg::T0);
        a.addi(Reg::T0, Reg::T0, 1);
        a.bne(Reg::T0, Reg::T1, "loop");
        a.ebreak();
        let g = run(a);
        assert_eq!(g.reg(Reg::A0), 55);
    }

    #[test]
    fn memory_roundtrip() {
        let mut a = Asm::new(0);
        a.li(Reg::T0, 0x2000_0040u32 as i32);
        a.li(Reg::T1, 0xFFFF_8234u32 as i32);
        a.sw(Reg::T1, 0, Reg::T0);
        a.lh(Reg::A0, 0, Reg::T0); // sign-extended 0x8234
        a.lhu(Reg::A1, 0, Reg::T0);
        a.ebreak();
        let g = run(a);
        assert_eq!(g.reg(Reg::A0), 0xFFFF_8234);
        assert_eq!(g.reg(Reg::A1), 0x8234);
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(GoldenCore::muldiv(MulDivOp::Div, 10, 0), u32::MAX);
        assert_eq!(GoldenCore::muldiv(MulDivOp::Rem, 10, 0), 10);
        assert_eq!(
            GoldenCore::muldiv(MulDivOp::Div, 0x8000_0000, u32::MAX),
            0x8000_0000
        );
        assert_eq!(GoldenCore::muldiv(MulDivOp::Rem, 0x8000_0000, u32::MAX), 0);
    }

    #[test]
    fn misaligned_load_traps_without_retiring() {
        let mut a = Asm::new(0);
        a.la(Reg::T0, "handler");
        a.csrw(csr::MTVEC, Reg::T0);
        a.li(Reg::T1, 0x2000_0002u32 as i32);
        a.lw(Reg::A0, 0, Reg::T1);
        a.label("handler");
        a.ebreak();
        let prog = a.finish().unwrap();
        let mut g = GoldenCore::new(0, 0x1_0000, 0x2000_0000, 0x1000);
        g.load_program(&prog);
        let mut custom = no_custom();
        let mut traps = vec![];
        loop {
            match g.step(&mut custom) {
                GoldenStep::Trap(c) => traps.push(c),
                GoldenStep::Halted => break,
                GoldenStep::Retired => {}
            }
        }
        assert_eq!(traps, vec![csr::CAUSE_MISALIGNED_LOAD]);
        assert_eq!(g.mcause, csr::CAUSE_MISALIGNED_LOAD);
        // mepc points at the faulting lw, which never wrote a0.
        assert_eq!(g.reg(Reg::A0), 0);
        assert_eq!(g.mem.read_word(0x2000_0000), 0);
    }

    #[test]
    fn interrupt_entry_respects_priority_and_masks() {
        let mut g = GoldenCore::new(0, 0x100, 0x2000_0000, 0x100);
        g.mtvec = 0x80;
        g.mip = csr::MIP_MTIP | csr::MIP_MEIP;
        g.mie = csr::MIP_MTIP | csr::MIP_MEIP;
        assert_eq!(g.take_interrupt(), None); // MIE off
        g.mstatus = csr::MSTATUS_MIE;
        assert_eq!(g.take_interrupt(), Some(csr::CAUSE_EXTERNAL));
        assert_eq!(g.pc, 0x80);
        assert_eq!(g.mstatus & csr::MSTATUS_MIE, 0);
        assert_ne!(g.mstatus & csr::MSTATUS_MPIE, 0);
    }
}
