//! Basic-block translation cache: pre-decoded micro-op superblocks.
//!
//! The interpreter pays a fetch → decode-cache probe → `execute` match →
//! latency match per instruction, plus one virtual `DataBus` call per
//! cycle. This module pre-decodes straight-line guest code into dense
//! [`Uop`] buffers once (operands inlined, register indices resolved,
//! branch targets pre-computed, dual-issue pairs and fusible macro-op
//! pairs resolved statically) and executes whole blocks per dispatch,
//! batching the bus clock into one `advance_cycles` call per block chain.
//!
//! **Timing-replay contract.** Architectural execution is split from
//! timing annotation, but the annotation is replayed *exactly*: every
//! cycle, retirement, trace entry, counter increment, profile attribution
//! and predictor update lands precisely where the per-cycle interpreter
//! puts it. The batching differential tests assert bit-identical results
//! with the cache on. Key replay rules:
//!
//! * Pairing is decided greedily from the block entry, exactly as the
//!   interpreter's memoryless per-step pairing does; a block is trimmed
//!   so its cut never splits a pair the interpreter would have issued.
//! * Fusion only merges two steps the interpreter would have executed as
//!   *unpaired singles*, and replays both constituents' cycles, trace
//!   entries and attributions individually — fusion is a host-side
//!   speedup, never a guest-visible timing change.
//! * The per-word `decoded` cache is shared, not shadowed: dispatch
//!   counts hits/misses against it and fills it with the block's stored
//!   instructions (including the interpreter's silent dual-issue
//!   peek-fills), so interleaving block and interpreter execution never
//!   decodes a word through two disagreeing paths.
//!
//! **Block lifecycle.** Blocks are built lazily at the executed PC,
//! terminate at control flow, at a CSR access that could write the
//! interrupt-gate CSRs (`mstatus`/`mie` — translated as a terminal
//! *barrier* micro-op: the write may unmask a pending interrupt, so the
//! dispatcher stops chaining and returns to the caller's interrupt-gate
//! check; all other CSR accesses execute mid-block), or before any other
//! system-level instruction
//! (`mret`/`wfi`/`ecall`/`ebreak`/`fence`/custom — those run on the
//! interpreter path), and chain to successor blocks inside one dispatch
//! while the batch budget and quiescence conditions hold. Any
//! instruction-memory rewrite ([`CoreEngine::invalidate_decoded`],
//! fault-injected IMEM flips) kills every block covering the word, and
//! `fence.i` flushes the whole cache; per-entry-PC execution statistics
//! survive invalidation so retranslation shows up in the profiler.

use crate::coproc::Coprocessor;
use crate::counters::CoreCounters;
use crate::engine::{BlockStats, CoreEngine, CoreEvent, DataBus};
use crate::exec::{alu, branch_taken, muldiv};
use crate::timing::TimingParams;
use rvsim_isa::instr::LoadOp;
use rvsim_isa::uop::{fuse, lower, Uop, UopSrc};
use rvsim_isa::{csr, decode, CsrOp, Instr, Reg};
use rvsim_mem::{AccessSize, Mem};
use rvsim_snapshot::{self as snap, Json, SnapError};
use std::collections::HashMap;

/// Longest block, in instruction words. Long enough to cover real ISR
/// bodies and kernel inner loops; short enough to keep translation cheap.
const MAX_WORDS: usize = 64;

/// One execution step of a block: what the interpreter would do in one
/// `step()` call (or, for fused macro-ops, two consecutive calls).
#[derive(Debug, Clone, Copy)]
enum Step {
    /// One instruction. `peeks` replays the interpreter's dual-issue
    /// lookahead (a silent decode-cache fill of the next word).
    Single { uop: Uop, peeks: bool },
    /// A dual-issue pair: both retire in one cycle.
    Pair { first: Uop, second: Uop },
    /// A fused macro-op pair: two instructions, two interpreter steps,
    /// one dispatch. `peeks` covers the *second* constituent's lookahead.
    Fused { uop: Uop, peeks: bool },
}

/// A translated basic block.
#[derive(Debug)]
struct Block {
    start: u32,
    steps: Vec<Step>,
    /// Decoded instruction per covered word (for decode-cache fills).
    instrs: Vec<Instr>,
    /// Every covered word is known present in the per-word decode cache
    /// (set after the first complete pass; IMEM writes that could clear a
    /// covered slot also kill the block, so the flag never goes stale).
    warm: bool,
    /// Dispatches of this translation.
    execs: u64,
    /// Fused macro-op executions inside this translation.
    fused_execs: u64,
}

impl Block {
    fn covers(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.start + 4 * self.instrs.len() as u32
    }
}

/// Folded per-entry-PC statistics, surviving invalidation.
#[derive(Debug, Default, Clone, Copy)]
struct PcStats {
    builds: u64,
    execs: u64,
    fused: u64,
}

const MAP_NONE: u32 = u32::MAX;
const MAP_FALLBACK: u32 = u32::MAX - 1;

/// The per-engine translation cache: an entry-PC → block map over the
/// instruction memory, slots for live translations, and folded statistics
/// keyed by entry PC. Built by [`CoreEngine::set_block_cache`].
#[derive(Debug)]
pub struct BlockCache {
    base: u32,
    /// Per word: `MAP_NONE`, `MAP_FALLBACK` (translation attempted and
    /// refused — a system op or undecodable word leads the block), or a
    /// slot index for a live block *entered* at this word.
    map: Vec<u32>,
    blocks: Vec<Option<Block>>,
    free: Vec<u32>,
    stats: HashMap<u32, PcStats>,
}

impl BlockCache {
    pub(crate) fn new(base: u32, size: u32) -> BlockCache {
        BlockCache {
            base,
            map: vec![MAP_NONE; size.div_ceil(4) as usize],
            blocks: Vec::new(),
            free: Vec::new(),
            stats: HashMap::new(),
        }
    }

    fn word_index(&self, addr: u32) -> usize {
        ((addr - self.base) / 4) as usize
    }

    /// The live block entered at `pc`, translating it if needed. `None`
    /// means the PC must execute on the interpreter path.
    fn lookup_or_build(
        &mut self,
        pc: u32,
        params: &TimingParams,
        imem: &Mem,
        counters: &mut CoreCounters,
    ) -> Option<u32> {
        let idx = self.word_index(pc);
        match self.map[idx] {
            MAP_FALLBACK => None,
            MAP_NONE => match build_block(params, imem, pc) {
                Some(block) => {
                    counters.block_builds += 1;
                    self.stats.entry(pc).or_default().builds += 1;
                    let slot = match self.free.pop() {
                        Some(s) => {
                            self.blocks[s as usize] = Some(block);
                            s
                        }
                        None => {
                            self.blocks.push(Some(block));
                            (self.blocks.len() - 1) as u32
                        }
                    };
                    self.map[idx] = slot;
                    Some(slot)
                }
                None => {
                    self.map[idx] = MAP_FALLBACK;
                    None
                }
            },
            slot => Some(slot),
        }
    }

    fn kill_slot(&mut self, slot: u32) {
        if let Some(b) = self.blocks[slot as usize].take() {
            let s = self.stats.entry(b.start).or_default();
            s.execs += b.execs;
            s.fused += b.fused_execs;
            let idx = self.word_index(b.start);
            self.map[idx] = MAP_NONE;
            self.free.push(slot);
        }
    }

    /// Kills every block covering the rewritten word and clears any
    /// fallback mark on it (the new bytes may be translatable).
    pub(crate) fn invalidate_word(&mut self, addr: u32) {
        let idx = self.word_index(addr);
        if self.map[idx] == MAP_FALLBACK {
            self.map[idx] = MAP_NONE;
        }
        for slot in 0..self.blocks.len() as u32 {
            if self.blocks[slot as usize]
                .as_ref()
                .is_some_and(|b| b.covers(addr))
            {
                self.kill_slot(slot);
            }
        }
    }

    /// Drops every translation and fallback mark (`fence.i`), keeping
    /// the folded statistics.
    pub(crate) fn flush(&mut self) {
        for slot in 0..self.blocks.len() as u32 {
            self.kill_slot(slot);
        }
        for m in &mut self.map {
            *m = MAP_NONE;
        }
    }

    /// Full reset for a fresh program image: translations *and* stats.
    pub(crate) fn reset(&mut self) {
        self.flush();
        self.stats.clear();
    }

    /// Serializes the cache *layout* for a machine-state snapshot: the
    /// entry map (including fallback marks), each live slot's identity
    /// and lifetime counters, the free list, and the folded per-PC
    /// statistics (sorted by entry PC — `HashMap` iteration order must
    /// never leak into a snapshot). Translations themselves are not
    /// stored: they are a deterministic function of the instruction
    /// memory and are rebuilt by [`from_snap`](Self::from_snap).
    pub(crate) fn to_snap(&self) -> Json {
        let slots: Vec<Json> = self
            .blocks
            .iter()
            .map(|b| match b {
                None => Json::Null,
                Some(b) => Json::object()
                    .with("start", b.start)
                    .with("len", b.instrs.len())
                    .with("warm", b.warm)
                    .with("execs", b.execs)
                    .with("fused_execs", b.fused_execs),
            })
            .collect();
        let mut pcs: Vec<u32> = self.stats.keys().copied().collect();
        pcs.sort_unstable();
        let stats: Vec<Json> = pcs
            .iter()
            .map(|pc| {
                let s = self.stats[pc];
                Json::object()
                    .with("pc", *pc)
                    .with("builds", s.builds)
                    .with("execs", s.execs)
                    .with("fused", s.fused)
            })
            .collect();
        Json::object()
            .with("base", self.base)
            .with("map", snap::words_to_json(&self.map))
            .with("slots", slots)
            .with("free", snap::words_to_json(&self.free))
            .with("free_len", self.free.len())
            .with("stats", stats)
    }

    /// Rebuilds the cache from [`to_snap`](Self::to_snap) output by
    /// retranslating every live slot from the restored instruction
    /// memory — through the pure [`build_block`] path, so no counter or
    /// statistic is bumped and the slot layout, free list and map come
    /// out exactly as snapshotted.
    ///
    /// # Errors
    ///
    /// Fails on malformed fields, an IMEM-geometry mismatch, or a slot
    /// whose entry PC no longer translates to a block of the recorded
    /// length (the snapshot and instruction memory disagree).
    pub(crate) fn from_snap(
        value: &Json,
        params: &TimingParams,
        imem: &Mem,
    ) -> Result<BlockCache, SnapError> {
        let base = snap::get_u32(value, "base")?;
        if base != imem.base() {
            return Err(SnapError::new(format!(
                "block cache: base {base:#010x} does not match imem base {:#010x}",
                imem.base()
            )));
        }
        let map_len = (imem.end() - base).div_ceil(4) as usize;
        let map = snap::words_from_json(snap::field(value, "map")?, map_len)?;
        let slots = snap::get_array(value, "slots")?;
        let mut blocks: Vec<Option<Block>> = Vec::with_capacity(slots.len());
        for (slot, entry) in slots.iter().enumerate() {
            if matches!(entry, Json::Null) {
                blocks.push(None);
                continue;
            }
            let start = snap::get_u32(entry, "start")?;
            let len = snap::get_usize(entry, "len")?;
            let mut block = build_block(params, imem, start).ok_or_else(|| {
                SnapError::new(format!(
                    "block cache: slot {slot} entry {start:#010x} no longer translates"
                ))
            })?;
            if block.instrs.len() != len {
                return Err(SnapError::new(format!(
                    "block cache: slot {slot} entry {start:#010x} rebuilt as {} words, snapshot recorded {len}",
                    block.instrs.len()
                )));
            }
            block.warm = snap::get_bool(entry, "warm")?;
            block.execs = snap::get_u64(entry, "execs")?;
            block.fused_execs = snap::get_u64(entry, "fused_execs")?;
            blocks.push(Some(block));
        }
        for (idx, &m) in map.iter().enumerate() {
            if m != MAP_NONE
                && m != MAP_FALLBACK
                && blocks.get(m as usize).is_none_or(|b| b.is_none())
            {
                return Err(SnapError::new(format!(
                    "block cache: map word {idx} points at dead slot {m}"
                )));
            }
        }
        let free_len = snap::get_usize(value, "free_len")?;
        let free = snap::words_from_json(snap::field(value, "free")?, free_len)?;
        if free
            .iter()
            .any(|&s| blocks.get(s as usize).is_none_or(|b| b.is_some()))
        {
            return Err(SnapError::new("block cache: free list names a live slot"));
        }
        let mut stats = HashMap::new();
        for entry in snap::get_array(value, "stats")? {
            let pc = snap::get_u32(entry, "pc")?;
            stats.insert(
                pc,
                PcStats {
                    builds: snap::get_u64(entry, "builds")?,
                    execs: snap::get_u64(entry, "execs")?,
                    fused: snap::get_u64(entry, "fused")?,
                },
            );
        }
        Ok(BlockCache {
            base,
            map,
            blocks,
            free,
            stats,
        })
    }

    /// Folded + live statistics for blocks entered in `[start, end]`.
    pub(crate) fn stats_in(&self, start: u32, end: u32) -> BlockStats {
        let mut out = BlockStats::default();
        for (&pc, s) in &self.stats {
            if pc >= start && pc <= end {
                out.builds += s.builds;
                out.execs += s.execs;
                out.fused += s.fused;
                out.entries += 1;
            }
        }
        for b in self.blocks.iter().flatten() {
            if b.start >= start && b.start <= end {
                out.execs += b.execs;
                out.fused += b.fused_execs;
            }
        }
        out
    }
}

fn raw_hazard(a: &Instr, b: &Instr) -> bool {
    a.rd()
        .is_some_and(|rd| b.sources().iter().flatten().any(|s| *s == rd))
}

/// Translates the basic block entered at `start`, or `None` when the
/// first word has no block representation (system op, undecodable word,
/// outside IMEM).
fn build_block(params: &TimingParams, imem: &Mem, start: u32) -> Option<Block> {
    // 1. Scan straight-line code.
    let mut instrs: Vec<Instr> = Vec::new();
    let mut terminated = false;
    let mut pc = start;
    loop {
        if !imem.contains(pc) {
            break;
        }
        let Ok(i) = decode(imem.read_word(pc)) else {
            break;
        };
        if lower(&i, pc).is_none() {
            break; // system-level op: interpreter path
        }
        instrs.push(i);
        if i.is_control_flow() {
            terminated = true;
            break;
        }
        // A CSR access that could write the interrupt-gate CSRs
        // (`mstatus`/`mie`) is a barrier: the write may unmask a pending
        // interrupt, so the block ends here and the dispatcher returns to
        // the caller's gate check before any further issue. Every other
        // CSR access — reads, and writes to non-gate CSRs such as
        // `mscratch`/`mepc`/`mcause` — stays mid-block.
        if let Instr::Csr {
            op, csr: addr, src, ..
        } = i
        {
            // The set/clear forms skip the write when the operand is
            // zero — statically known for `x0` sources and zero
            // immediates.
            let may_write = match op {
                CsrOp::Rw | CsrOp::Rwi => true,
                CsrOp::Rs | CsrOp::Rsi | CsrOp::Rc | CsrOp::Rci => src != 0,
            };
            if may_write && matches!(addr, csr::MSTATUS | csr::MIE) {
                terminated = true;
                break;
            }
        }
        if instrs.len() >= MAX_WORDS {
            break;
        }
        pc = pc.wrapping_add(4);
    }

    // 2. Greedy pairing from the entry — ground truth for the
    // interpreter's memoryless per-step pairing.
    let mut n = instrs.len();
    let mut pair_first = vec![false; n];
    if params.dual_issue {
        let mut i = 0;
        while i + 1 < n {
            if CoreEngine::is_simple(&instrs[i])
                && CoreEngine::is_simple(&instrs[i + 1])
                && !raw_hazard(&instrs[i], &instrs[i + 1])
            {
                pair_first[i] = true;
                i += 2;
            } else {
                i += 1;
            }
        }

        // 3. Never cut between a pair the interpreter would issue: if the
        // trailing instruction is an unpaired simple op that pairs with
        // the word just past the cut, drop it — the successor block will
        // pair them. (At most one drop: the pass already proved the new
        // trailing op does not pair with the dropped one.)
        if !terminated && n > 0 && !(n >= 2 && pair_first[n - 2]) {
            let next_pc = start.wrapping_add(4 * n as u32);
            let tail_pairs = CoreEngine::is_simple(&instrs[n - 1])
                && imem.contains(next_pc)
                && decode(imem.read_word(next_pc)).is_ok_and(|next| {
                    CoreEngine::is_simple(&next) && !raw_hazard(&instrs[n - 1], &next)
                });
            if tail_pairs {
                instrs.pop();
                pair_first.pop();
                n -= 1;
            }
        }
    }
    if instrs.is_empty() {
        return None;
    }

    // 4. Lower to steps: pairs as decided, macro-op fusion only between
    // two adjacent *unpaired single* steps (so fusing never steals a pair
    // and the replayed timing is exactly two interpreter steps).
    let mut steps = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        let pc_i = start.wrapping_add(4 * i as u32);
        if pair_first[i] {
            steps.push(Step::Pair {
                first: lower(&instrs[i], pc_i).expect("pairable op lowers"),
                second: lower(&instrs[i + 1], pc_i.wrapping_add(4)).expect("pairable op lowers"),
            });
            i += 2;
            continue;
        }
        if i + 1 < n && !pair_first[i + 1] {
            if let Some(fused) = fuse(&instrs[i], &instrs[i + 1], pc_i) {
                // The second constituent peeks ahead exactly when the
                // interpreter would: dual issue, simple, unpaired.
                let peeks = params.dual_issue && CoreEngine::is_simple(&instrs[i + 1]);
                steps.push(Step::Fused { uop: fused, peeks });
                i += 2;
                continue;
            }
        }
        steps.push(Step::Single {
            uop: lower(&instrs[i], pc_i).expect("scanned op lowers"),
            peeks: params.dual_issue && CoreEngine::is_simple(&instrs[i]),
        });
        i += 1;
    }

    Some(Block {
        start,
        steps,
        instrs,
        warm: false,
        execs: 0,
        fused_execs: 0,
    })
}

/// What block-mode execution accomplished, consumed by `run_until`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BlockOutcome {
    /// No block at the current PC (or no budget for its first step):
    /// nothing was executed, take the per-cycle path.
    NotEngaged,
    /// At least one step executed; `busy` holds the trailing drain.
    Ran {
        event: Option<CoreEvent>,
        attention: bool,
    },
}

/// How a single block's dispatch ended.
enum StepExit {
    /// All steps executed; control may chain to the successor block.
    Done,
    /// The next step does not fit the batch budget.
    Budget,
    /// A synchronous exception trapped (misaligned access).
    Event(CoreEvent),
    /// The bus raised attention after a memory access.
    Attention,
    /// The block's terminal CSR access wrote an interrupt-gate CSR.
    /// Always the last step, so the pass was complete — but chaining must
    /// stop: the write may have unmasked a pending interrupt, and only
    /// the caller's gate check may decide whether the next instruction
    /// issues.
    Barrier,
}

fn load_shape(op: LoadOp) -> (AccessSize, bool) {
    match op {
        LoadOp::Lb => (AccessSize::Byte, true),
        LoadOp::Lbu => (AccessSize::Byte, false),
        LoadOp::Lh => (AccessSize::Half, true),
        LoadOp::Lhu => (AccessSize::Half, false),
        LoadOp::Lw => (AccessSize::Word, false),
    }
}

fn extend(data: u32, size: AccessSize, signed: bool) -> u32 {
    match (size, signed) {
        (AccessSize::Byte, true) => data as u8 as i8 as i32 as u32,
        (AccessSize::Byte, false) => data & 0xff,
        (AccessSize::Half, true) => data as u16 as i16 as i32 as u32,
        (AccessSize::Half, false) => data & 0xffff,
        (AccessSize::Word, _) => data,
    }
}

impl CoreEngine {
    /// Runs translated blocks from the current PC for up to `remaining`
    /// cycles. Caller guarantees the quiescent-batch contract plus:
    /// `busy == 0`, not parked in `wfi`, not halted, and no enabled
    /// pending interrupt.
    pub(crate) fn try_blocks(&mut self, bus: &mut dyn DataBus, remaining: u64) -> BlockOutcome {
        let mut cache = self.blocks.take().expect("block cache attached");
        let out = self.run_blocks::<false>(&mut cache, bus, &mut None, remaining);
        self.blocks = Some(cache);
        out
    }

    /// [`try_blocks`](Self::try_blocks) for a unit-active batch: the
    /// coprocessor is stepped after every consumed cycle, in exactly the
    /// per-cycle platform order (core work first, then the coprocessor's
    /// port cycle).
    pub(crate) fn try_blocks_costep(
        &mut self,
        bus: &mut dyn DataBus,
        coproc: &mut dyn Coprocessor,
        remaining: u64,
    ) -> BlockOutcome {
        let mut cache = self.blocks.take().expect("block cache attached");
        let out = self.run_blocks::<true>(&mut cache, bus, &mut Some(coproc), remaining);
        self.blocks = Some(cache);
        out
    }

    fn run_blocks<const COSTEP: bool>(
        &mut self,
        cache: &mut BlockCache,
        bus: &mut dyn DataBus,
        co: &mut Option<&mut dyn Coprocessor>,
        remaining: u64,
    ) -> BlockOutcome {
        let entry_cycle = self.cycle;
        let mut lag: u64 = 0; // bus cycles owed (flushed before any access)
        let mut pending: u32 = 0; // trailing drain of the last issued op
        let mut engaged = false;
        let mut event = None;
        let mut attention = false;

        loop {
            let pc = self.state.pc;
            if pc & 3 != 0 || !self.imem.contains(pc) {
                break;
            }
            // The cheapest step costs `pending + 1` cycles; don't even
            // dispatch when that cannot fit.
            if (self.cycle - entry_cycle) + u64::from(pending) + 1 > remaining {
                break;
            }
            let Some(slot) =
                cache.lookup_or_build(pc, &self.params, &self.imem, &mut self.counters)
            else {
                break;
            };
            self.counters.block_hits += 1;
            let (exit, fused, any) = {
                let block = cache.blocks[slot as usize].as_ref().expect("live slot");
                self.dispatch_block::<COSTEP>(
                    block,
                    bus,
                    co,
                    remaining,
                    entry_cycle,
                    &mut lag,
                    &mut pending,
                )
            };
            {
                let block = cache.blocks[slot as usize].as_mut().expect("live slot");
                block.execs += 1;
                block.fused_execs += fused;
                // A complete pass fetched every covered word (a barrier
                // exit comes from the terminal step, so it is one too).
                block.warm |= matches!(exit, StepExit::Done | StepExit::Barrier);
            }
            self.counters.fused_ops += fused;
            engaged |= any;
            match exit {
                // In a co-stepped batch, stop chaining once the
                // coprocessor drains idle: the plain quiescent batch path
                // is faster from here.
                StepExit::Done => {
                    if COSTEP && co.as_ref().is_some_and(|c| c.is_idle()) {
                        break;
                    }
                    continue;
                }
                StepExit::Budget | StepExit::Barrier => break,
                StepExit::Event(ev) => {
                    event = Some(ev);
                    break;
                }
                StepExit::Attention => {
                    attention = true;
                    break;
                }
            }
        }

        if !engaged {
            debug_assert!(lag == 0 && pending == 0 && self.cycle == entry_cycle);
            return BlockOutcome::NotEngaged;
        }
        // Exactly like an interpreter step sequence ending here: the
        // trailing drain becomes `busy` (the outer loop bulk-skips it,
        // clipping to the batch budget), the bus clock catches up, and
        // `mcycle` reflects the consumed cycles.
        self.busy = pending;
        if lag > 0 {
            bus.advance_cycles(lag);
        }
        self.state.csrs.mcycle = self.cycle as u32;
        BlockOutcome::Ran { event, attention }
    }

    /// Executes one block's steps, replaying the interpreter's timing
    /// per step. Returns how the dispatch ended, the number of fused
    /// macro-ops executed, and whether any step executed at all.
    ///
    /// With `co` attached (a unit-active batch) every consumed cycle is
    /// replayed individually — bus clock first, the core's work for that
    /// cycle, then the coprocessor's step — so the shared-port
    /// arbitration the coprocessor sees is bit-identical to per-cycle
    /// stepping; `lag` stays zero in that mode.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn dispatch_block<const COSTEP: bool>(
        &mut self,
        block: &Block,
        bus: &mut dyn DataBus,
        co: &mut Option<&mut dyn Coprocessor>,
        remaining: u64,
        entry_cycle: u64,
        lag: &mut u64,
        pending: &mut u32,
    ) -> (StepExit, u64, bool) {
        let p = self.params;
        let warm = block.warm;
        let base_idx = ((block.start - self.imem.base()) / 4) as usize;
        let mut widx = 0usize;
        let mut fused_execs = 0u64;
        let mut any = false;

        for step in &block.steps {
            let wpc = block.start.wrapping_add(4 * widx as u32);
            let issue: u64 = match step {
                Step::Fused { .. } => 2,
                _ => 1,
            };
            if (self.cycle - entry_cycle) + u64::from(*pending) + issue > remaining {
                return (StepExit::Budget, fused_execs, any);
            }
            // Drain the previous op, then spend this op's issue cycle —
            // the same cycles the interpreter's busy-skip and
            // `advance_cycles(1)`+`step` would consume. Co-stepped
            // dispatch replays them one at a time: the drain cycles give
            // the coprocessor the port cycles the core left idle.
            if COSTEP {
                let c = co.as_mut().expect("co-stepped dispatch has a coprocessor");
                for _ in 0..*pending {
                    bus.advance_cycles(1);
                    self.cycle += 1;
                    c.step(&mut self.state, bus);
                }
                bus.advance_cycles(1);
                self.cycle += 1;
            } else {
                let spend = u64::from(*pending) + 1;
                self.cycle += spend;
                *lag += spend;
            }
            *pending = 0;
            any = true;

            let exit: Option<StepExit> = 'exec: {
                match step {
                    Step::Single { uop, peeks } => {
                        let instr = block.instrs[widx];
                        self.count_fetch(warm, base_idx + widx, instr);
                        match *uop {
                            Uop::AluRR { op, rd, rs1, rs2 } => {
                                let v = alu(op, self.state.read_reg(rs1), self.state.read_reg(rs2));
                                self.state.write_reg(rd, v);
                                self.retire_trace(wpc);
                                self.attribute(wpc, 1);
                                let next = wpc.wrapping_add(4);
                                if *peeks {
                                    self.peek_fill(block, base_idx, widx + 1, next);
                                }
                                self.state.pc = next;
                            }
                            Uop::AluRI { op, rd, rs1, imm } => {
                                let v = alu(op, self.state.read_reg(rs1), imm);
                                self.state.write_reg(rd, v);
                                self.retire_trace(wpc);
                                self.attribute(wpc, 1);
                                let next = wpc.wrapping_add(4);
                                if *peeks {
                                    self.peek_fill(block, base_idx, widx + 1, next);
                                }
                                self.state.pc = next;
                            }
                            Uop::MovImm { rd, value } => {
                                self.state.write_reg(rd, value);
                                self.retire_trace(wpc);
                                self.attribute(wpc, 1);
                                let next = wpc.wrapping_add(4);
                                if *peeks {
                                    self.peek_fill(block, base_idx, widx + 1, next);
                                }
                                self.state.pc = next;
                            }
                            Uop::MulDiv { op, rd, rs1, rs2 } => {
                                let v =
                                    muldiv(op, self.state.read_reg(rs1), self.state.read_reg(rs2));
                                self.state.write_reg(rd, v);
                                self.retire_trace(wpc);
                                let lat = match op {
                                    rvsim_isa::MulDivOp::Mul
                                    | rvsim_isa::MulDivOp::Mulh
                                    | rvsim_isa::MulDivOp::Mulhsu
                                    | rvsim_isa::MulDivOp::Mulhu => p.mul_latency,
                                    _ => p.div_latency,
                                };
                                *pending = lat.saturating_sub(1);
                                self.attribute(wpc, 1 + u64::from(*pending));
                                self.counters.stall_exec += u64::from(*pending);
                                self.state.pc = wpc.wrapping_add(4);
                            }
                            Uop::Load {
                                op,
                                rd,
                                rs1,
                                offset,
                            } => {
                                let addr = self.state.read_reg(rs1).wrapping_add(offset);
                                let (size, signed) = load_shape(op);
                                if addr % size.bytes() != 0 {
                                    let ev =
                                        self.block_trap(wpc, csr::CAUSE_MISALIGNED_LOAD, pending);
                                    break 'exec Some(StepExit::Event(ev));
                                }
                                bus.advance_cycles(std::mem::take(lag));
                                let resp = bus.core_access(addr, size, None);
                                self.state.write_reg(rd, extend(resp.data, size, signed));
                                self.retire_trace(wpc);
                                *pending =
                                    (p.load_base_latency + resp.extra_latency).saturating_sub(1);
                                self.attribute(wpc, 1 + u64::from(*pending));
                                self.counters.stall_mem += u64::from(*pending);
                                self.state.pc = wpc.wrapping_add(4);
                                if bus.take_attention() {
                                    break 'exec Some(StepExit::Attention);
                                }
                            }
                            Uop::Store {
                                op,
                                rs1,
                                rs2,
                                offset,
                            } => {
                                let addr = self.state.read_reg(rs1).wrapping_add(offset);
                                let size = match op {
                                    rvsim_isa::StoreOp::Sb => AccessSize::Byte,
                                    rvsim_isa::StoreOp::Sh => AccessSize::Half,
                                    rvsim_isa::StoreOp::Sw => AccessSize::Word,
                                };
                                if addr % size.bytes() != 0 {
                                    let ev =
                                        self.block_trap(wpc, csr::CAUSE_MISALIGNED_STORE, pending);
                                    break 'exec Some(StepExit::Event(ev));
                                }
                                let value = self.state.read_reg(rs2);
                                bus.advance_cycles(std::mem::take(lag));
                                let resp = bus.core_access(addr, size, Some(value));
                                self.retire_trace(wpc);
                                *pending = (p.store_latency + resp.extra_latency).saturating_sub(1);
                                self.attribute(wpc, 1 + u64::from(*pending));
                                self.counters.stall_mem += u64::from(*pending);
                                self.state.pc = wpc.wrapping_add(4);
                                if bus.take_attention() {
                                    break 'exec Some(StepExit::Attention);
                                }
                            }
                            Uop::Branch {
                                op,
                                rs1,
                                rs2,
                                taken_pc,
                                fall_pc,
                            } => {
                                let taken = branch_taken(
                                    op,
                                    self.state.read_reg(rs1),
                                    self.state.read_reg(rs2),
                                );
                                self.retire_trace(wpc);
                                *pending = self.branch_drain(wpc, taken);
                                self.attribute(wpc, 1 + u64::from(*pending));
                                self.counters.stall_control += u64::from(*pending);
                                self.state.pc = if taken { taken_pc } else { fall_pc };
                            }
                            Uop::Jal {
                                link,
                                link_value,
                                target,
                            } => {
                                self.state.write_reg(link, link_value);
                                self.retire_trace(wpc);
                                *pending = p.jump_penalty;
                                self.attribute(wpc, 1 + u64::from(*pending));
                                self.counters.stall_control += u64::from(*pending);
                                self.state.pc = target;
                            }
                            Uop::Jalr {
                                link,
                                link_value,
                                rs1,
                                offset,
                            } => {
                                let target = self.state.read_reg(rs1).wrapping_add(offset) & !1;
                                self.state.write_reg(link, link_value);
                                self.retire_trace(wpc);
                                *pending = p.jalr_penalty;
                                self.attribute(wpc, 1 + u64::from(*pending));
                                self.counters.stall_control += u64::from(*pending);
                                self.state.pc = target;
                            }
                            Uop::Csr {
                                op,
                                rd,
                                csr: addr,
                                src,
                            } => {
                                // The interpreter syncs `mcycle` at every
                                // step entry; a translated CSR read must
                                // observe the same value.
                                self.state.csrs.mcycle = self.cycle as u32;
                                let old = self.state.csrs.read(addr);
                                let operand = if op.is_immediate() {
                                    u32::from(src)
                                } else {
                                    self.state.read_reg(Reg::from_number(src))
                                };
                                let new = match op {
                                    CsrOp::Rw | CsrOp::Rwi => Some(operand),
                                    CsrOp::Rs | CsrOp::Rsi => {
                                        (operand != 0).then_some(old | operand)
                                    }
                                    CsrOp::Rc | CsrOp::Rci => {
                                        (operand != 0).then_some(old & !operand)
                                    }
                                };
                                if let Some(v) = new {
                                    self.state.csrs.write(addr, v);
                                }
                                self.state.write_reg(rd, old);
                                self.retire_trace(wpc);
                                *pending = p.csr_latency.saturating_sub(1);
                                self.attribute(wpc, 1 + u64::from(*pending));
                                self.counters.stall_exec += u64::from(*pending);
                                self.state.pc = wpc.wrapping_add(4);
                                // An actual write to a gate CSR stops the
                                // chain: only the caller's interrupt-gate
                                // check may issue further instructions.
                                // (The builder made any such access the
                                // block's terminal step.)
                                if new.is_some() && matches!(addr, csr::MSTATUS | csr::MIE) {
                                    break 'exec Some(StepExit::Barrier);
                                }
                            }
                            _ => unreachable!("fused uop in a Single step"),
                        }
                        widx += 1;
                    }
                    Step::Pair { first, second } => {
                        // fetch + execute the first, peek-fill discovers the
                        // pair, fetch (always a hit) + execute the second —
                        // all in this one cycle, exactly like the
                        // interpreter's `continue`d issue loop.
                        self.count_fetch(warm, base_idx + widx, block.instrs[widx]);
                        self.exec_simple(first);
                        self.retire_trace(wpc);
                        self.fill_decoded(warm, base_idx + widx + 1, block.instrs[widx + 1]);
                        self.counters.issued_pairs += 1;
                        self.count_fetch(warm, base_idx + widx + 1, block.instrs[widx + 1]);
                        self.exec_simple(second);
                        let second_pc = wpc.wrapping_add(4);
                        self.retire_trace(second_pc);
                        self.attribute(second_pc, 1);
                        self.state.pc = wpc.wrapping_add(8);
                        widx += 2;
                    }
                    Step::Fused { uop, peeks } => {
                        match *uop {
                            Uop::LoadImm {
                                rd_hi,
                                hi,
                                rd,
                                value,
                            } => {
                                self.count_fetch(warm, base_idx + widx, block.instrs[widx]);
                                self.state.write_reg(rd_hi, hi);
                                self.retire_trace(wpc);
                                self.attribute(wpc, 1);
                                if p.dual_issue {
                                    // The first constituent's lookahead.
                                    self.fill_decoded(
                                        warm,
                                        base_idx + widx + 1,
                                        block.instrs[widx + 1],
                                    );
                                }
                                self.fused_mid_cycle::<COSTEP>(bus, co, lag);
                                self.count_fetch(warm, base_idx + widx + 1, block.instrs[widx + 1]);
                                self.state.write_reg(rd, value);
                                let second_pc = wpc.wrapping_add(4);
                                self.retire_trace(second_pc);
                                self.attribute(second_pc, 1);
                                let next = wpc.wrapping_add(8);
                                if *peeks {
                                    self.peek_fill(block, base_idx, widx + 2, next);
                                }
                                self.state.pc = next;
                            }
                            Uop::AuipcJalr {
                                rd1,
                                pcrel,
                                link,
                                link_value,
                                target,
                            } => {
                                self.count_fetch(warm, base_idx + widx, block.instrs[widx]);
                                self.state.write_reg(rd1, pcrel);
                                self.retire_trace(wpc);
                                self.attribute(wpc, 1);
                                if p.dual_issue {
                                    self.fill_decoded(
                                        warm,
                                        base_idx + widx + 1,
                                        block.instrs[widx + 1],
                                    );
                                }
                                self.fused_mid_cycle::<COSTEP>(bus, co, lag);
                                self.count_fetch(warm, base_idx + widx + 1, block.instrs[widx + 1]);
                                self.state.write_reg(link, link_value);
                                let second_pc = wpc.wrapping_add(4);
                                self.retire_trace(second_pc);
                                *pending = p.jalr_penalty;
                                self.attribute(second_pc, 1 + u64::from(*pending));
                                self.counters.stall_control += u64::from(*pending);
                                self.state.pc = target;
                            }
                            Uop::CmpBranch {
                                op,
                                rd,
                                rs1,
                                src2,
                                branch_if_nonzero,
                                taken_pc,
                                fall_pc,
                            } => {
                                self.count_fetch(warm, base_idx + widx, block.instrs[widx]);
                                let b = match src2 {
                                    UopSrc::Reg(r) => self.state.read_reg(r),
                                    UopSrc::Imm(v) => v,
                                };
                                let cmp = alu(op, self.state.read_reg(rs1), b);
                                self.state.write_reg(rd, cmp);
                                self.retire_trace(wpc);
                                self.attribute(wpc, 1);
                                if p.dual_issue {
                                    self.fill_decoded(
                                        warm,
                                        base_idx + widx + 1,
                                        block.instrs[widx + 1],
                                    );
                                }
                                self.fused_mid_cycle::<COSTEP>(bus, co, lag);
                                self.count_fetch(warm, base_idx + widx + 1, block.instrs[widx + 1]);
                                let taken = (cmp != 0) == branch_if_nonzero;
                                let second_pc = wpc.wrapping_add(4);
                                self.retire_trace(second_pc);
                                *pending = self.branch_drain(second_pc, taken);
                                self.attribute(second_pc, 1 + u64::from(*pending));
                                self.counters.stall_control += u64::from(*pending);
                                self.state.pc = if taken { taken_pc } else { fall_pc };
                            }
                            _ => unreachable!("unfused uop in a Fused step"),
                        }
                        fused_execs += 1;
                        widx += 2;
                    }
                }
                None
            };
            // The issue cycle's coprocessor step — after the core's work,
            // exactly where the per-cycle platform loop puts it (even
            // when the step trapped or raised attention).
            if COSTEP {
                co.as_mut()
                    .expect("co-stepped dispatch has a coprocessor")
                    .step(&mut self.state, bus);
            }
            if let Some(e) = exit {
                return (e, fused_execs, any);
            }
        }
        (StepExit::Done, fused_execs, any)
    }

    /// A fused macro-op's mid-step cycle boundary: the first constituent
    /// is done, the second begins next cycle. Co-stepped dispatch takes
    /// the coprocessor's step for the finished cycle and advances the bus
    /// clock; plain dispatch just accrues lag.
    #[inline]
    fn fused_mid_cycle<const COSTEP: bool>(
        &mut self,
        bus: &mut dyn DataBus,
        co: &mut Option<&mut dyn Coprocessor>,
        lag: &mut u64,
    ) {
        if COSTEP {
            co.as_mut()
                .expect("co-stepped dispatch has a coprocessor")
                .step(&mut self.state, bus);
            bus.advance_cycles(1);
            self.cycle += 1;
        } else {
            self.cycle += 1;
            *lag += 1;
        }
    }

    /// Branch drain cycles: the interpreter's `control_latency` minus the
    /// issue cycle, including the predictor update.
    fn branch_drain(&mut self, pc: u32, taken: bool) -> u32 {
        let p = self.params;
        if p.has_predictor {
            if self.predict_taken(pc, taken) == taken {
                0
            } else {
                p.branch_penalty
            }
        } else if taken {
            p.branch_penalty
        } else {
            0
        }
    }

    /// Synchronous-exception entry from block mode: the issue cycle is
    /// already consumed and counted, but nothing retires. The interpreter
    /// pushes and immediately pops the trace entry, which drops the
    /// oldest entry when the ring is full — replicated exactly.
    fn block_trap(&mut self, pc: u32, cause: u32, pending: &mut u32) -> CoreEvent {
        self.trace.drop_oldest_if_full();
        let target = self.state.csrs.enter_trap(pc, cause);
        self.state.pc = target;
        let drain = self.params.irq_entry_latency.saturating_sub(1);
        *pending = drain;
        self.counters.stall_irq_entry += u64::from(drain);
        self.attribute(target, 1 + u64::from(drain));
        CoreEvent::ExceptionEntered { cause }
    }

    /// One retirement: bumps the retire counter and pushes the trace
    /// entry at the current cycle, exactly as the interpreter does.
    #[inline]
    fn retire_trace(&mut self, pc: u32) {
        self.retired += 1;
        self.trace.push((self.cycle, pc));
    }

    /// One fetch against the shared per-word decode cache, with the
    /// interpreter's hit/miss accounting; misses fill from the block's
    /// stored decode (identical to decoding the IMEM word, which cannot
    /// have changed while the block is live).
    #[inline]
    fn count_fetch(&mut self, warm: bool, idx: usize, instr: Instr) {
        if warm {
            // The slot is provably filled — count the hit without
            // touching the decode array.
            self.counters.decode_hits += 1;
        } else if self.decoded[idx].is_some() {
            self.counters.decode_hits += 1;
        } else {
            self.counters.decode_misses += 1;
            self.decoded[idx] = Some(instr);
        }
    }

    /// A silent decode-cache fill (the interpreter's `peek`).
    #[inline]
    fn fill_decoded(&mut self, warm: bool, idx: usize, instr: Instr) {
        if !warm && self.decoded[idx].is_none() {
            self.decoded[idx] = Some(instr);
        }
    }

    /// Replays the dual-issue lookahead of an unpaired simple op: an
    /// in-block fill from the stored decode, or — past the block's end —
    /// a real `peek` against the current IMEM bytes (the next word is
    /// not covered by this block, so it may legitimately differ from
    /// anything seen at translation time).
    #[inline]
    fn peek_fill(&mut self, block: &Block, base_idx: usize, next_widx: usize, next_pc: u32) {
        if next_widx < block.instrs.len() {
            self.fill_decoded(block.warm, base_idx + next_widx, block.instrs[next_widx]);
        } else {
            self.peek(next_pc);
        }
    }

    #[inline]
    fn exec_simple(&mut self, uop: &Uop) {
        match *uop {
            Uop::AluRR { op, rd, rs1, rs2 } => {
                let v = alu(op, self.state.read_reg(rs1), self.state.read_reg(rs2));
                self.state.write_reg(rd, v);
            }
            Uop::AluRI { op, rd, rs1, imm } => {
                let v = alu(op, self.state.read_reg(rs1), imm);
                self.state.write_reg(rd, v);
            }
            Uop::MovImm { rd, value } => self.state.write_reg(rd, value),
            _ => unreachable!("pair constituents are simple ALU ops"),
        }
    }
}
