//! Deterministic single-event-upset fault injection.
//!
//! A [`FaultPlan`] is a seeded, replayable list of [`FaultEvent`]s pinned
//! to exact cycles. The system layer (`rtosunit::System`) consumes the
//! plan while it runs: register/CSR/DMEM bit flips, cache-line parity
//! upsets, bus-error responses and interrupt-line faults (spurious /
//! dropped / delayed external IRQs, spurious IPI doorbells). The plan is
//! `None` by default and costs nothing when off; when attached, the
//! quiescence horizon is bounded one cycle short of the next due fault so
//! batched and stepwise execution stay bit-identical.
//!
//! Faults model *silent* hardware upsets: a flipped register bit does not
//! mark the register dirty, a discarded cache line only changes timing,
//! and a poisoned bus response is indistinguishable from a load that
//! returned garbage. Whether anything notices is exactly what the fault
//! campaign (`rvsim-check::faultcamp`) classifies.

use rvsim_isa::rng::Rng64;
use rvsim_isa::Reg;
use rvsim_snapshot::{self as snap, Json, SnapError};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of an architectural register (active bank), without
    /// marking it dirty — the upset is invisible to save logic.
    RegFlip {
        /// Target register.
        reg: Reg,
        /// Bit index, `0..32`.
        bit: u8,
    },
    /// Flip one bit of a machine-mode CSR (by address).
    CsrFlip {
        /// CSR address (e.g. `csr::MEPC`).
        csr: u16,
        /// Bit index, `0..32`.
        bit: u8,
    },
    /// Flip one bit of a data-memory word.
    MemFlip {
        /// Word-aligned DMEM address.
        addr: u32,
        /// Bit index, `0..32`.
        bit: u8,
    },
    /// Discard the cache line containing `addr` (a detected parity error
    /// forces an eviction): data is unchanged, timing is perturbed.
    CacheUpset {
        /// Any address inside the victim line.
        addr: u32,
    },
    /// Arm a bus-error response: the next data-memory *load* returns the
    /// all-ones poison pattern instead of the stored word.
    BusError,
    /// Raise the external interrupt line although no device asked.
    SpuriousIrq,
    /// Drop the next scheduled external interrupt.
    DropIrq,
    /// Postpone the next scheduled external interrupt.
    DelayIrq {
        /// Extra cycles before the line rises.
        delay: u32,
    },
    /// Ring the inter-processor doorbell (`mip.MSIP`) spuriously.
    SpuriousIpi,
    /// Flip one bit of an instruction-memory word. The write goes through
    /// the engine's coherent IMEM path, so any cached decode and any live
    /// block translation covering the word are invalidated — subsequent
    /// fetches execute the corrupted encoding (or trap on it).
    ///
    /// Not in [`FaultPlan::generate`]'s random table (generated plans are
    /// pinned by regression seeds); construct it explicitly in directed
    /// campaigns and tests.
    ImemFlip {
        /// Word-aligned IMEM address.
        addr: u32,
        /// Bit index, `0..32`.
        bit: u8,
    },
}

impl FaultKind {
    /// Short stable name, used by trace events and replay artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::RegFlip { .. } => "reg_flip",
            FaultKind::CsrFlip { .. } => "csr_flip",
            FaultKind::MemFlip { .. } => "mem_flip",
            FaultKind::CacheUpset { .. } => "cache_upset",
            FaultKind::BusError => "bus_error",
            FaultKind::SpuriousIrq => "spurious_irq",
            FaultKind::DropIrq => "drop_irq",
            FaultKind::DelayIrq { .. } => "delay_irq",
            FaultKind::SpuriousIpi => "spurious_ipi",
            FaultKind::ImemFlip { .. } => "imem_flip",
        }
    }

    /// Dense numeric code for the trace layer (`1..=10`).
    pub fn code(&self) -> u32 {
        match self {
            FaultKind::RegFlip { .. } => 1,
            FaultKind::CsrFlip { .. } => 2,
            FaultKind::MemFlip { .. } => 3,
            FaultKind::CacheUpset { .. } => 4,
            FaultKind::BusError => 5,
            FaultKind::SpuriousIrq => 6,
            FaultKind::DropIrq => 7,
            FaultKind::DelayIrq { .. } => 8,
            FaultKind::SpuriousIpi => 9,
            FaultKind::ImemFlip { .. } => 10,
        }
    }
}

/// The stable name for a trace-layer fault code ([`FaultKind::code`]):
/// the inverse lookup used by trace viewers that only see the numeric
/// code. Codes outside the taxonomy render as `"unknown"`.
pub fn fault_code_name(code: u32) -> &'static str {
    match code {
        1 => "reg_flip",
        2 => "csr_flip",
        3 => "mem_flip",
        4 => "cache_upset",
        5 => "bus_error",
        6 => "spurious_irq",
        7 => "drop_irq",
        8 => "delay_irq",
        9 => "spurious_ipi",
        10 => "imem_flip",
        _ => "unknown",
    }
}

/// One fault pinned to an absolute cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute platform cycle at which the fault strikes.
    pub at_cycle: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Memory regions a generated plan may aim at. Campaigns pass the kernel
/// layout's interesting words (canaries, TCBs, semaphores, globals, live
/// stack frames) so random flips actually land on state that matters.
#[derive(Debug, Clone, Default)]
pub struct FaultTargets {
    /// Word-aligned DMEM addresses worth corrupting.
    pub mem_words: Vec<u32>,
    /// CSR addresses worth corrupting.
    pub csrs: Vec<u16>,
}

/// A seeded, replayable fault schedule (events sorted by cycle; ties keep
/// insertion order). Attach to a `System` before running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// Builds a plan from explicit events (sorted by cycle, stably).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at_cycle);
        FaultPlan { events, cursor: 0 }
    }

    /// Generates `count` faults from `seed`, uniformly spread over
    /// `window` (a half-open cycle range) and aimed at `targets`. The
    /// same `(seed, window, targets)` triple reproduces the same plan.
    pub fn generate(
        seed: u64,
        count: usize,
        window: std::ops::Range<u64>,
        targets: &FaultTargets,
    ) -> FaultPlan {
        let mut rng = Rng64::new(seed ^ 0xFA17_F17E_u64);
        let span = window.end.saturating_sub(window.start).max(1);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let at_cycle = window.start + rng.below(span);
            let kind = loop {
                match rng.below(9) {
                    0 => {
                        // x0 is immutable; flip a real register.
                        let reg = Reg::from_number(1 + rng.below(31) as u8);
                        break FaultKind::RegFlip {
                            reg,
                            bit: rng.below(32) as u8,
                        };
                    }
                    1 if !targets.csrs.is_empty() => {
                        break FaultKind::CsrFlip {
                            csr: *rng.pick(&targets.csrs),
                            bit: rng.below(32) as u8,
                        }
                    }
                    2 if !targets.mem_words.is_empty() => {
                        break FaultKind::MemFlip {
                            addr: *rng.pick(&targets.mem_words),
                            bit: rng.below(32) as u8,
                        }
                    }
                    3 if !targets.mem_words.is_empty() => {
                        break FaultKind::CacheUpset {
                            addr: *rng.pick(&targets.mem_words),
                        }
                    }
                    4 => break FaultKind::BusError,
                    5 => break FaultKind::SpuriousIrq,
                    6 => break FaultKind::DropIrq,
                    7 => {
                        break FaultKind::DelayIrq {
                            delay: 1 + rng.below(64) as u32,
                        }
                    }
                    8 => break FaultKind::SpuriousIpi,
                    _ => continue, // empty target class: reroll
                }
            };
            events.push(FaultEvent { at_cycle, kind });
        }
        FaultPlan::new(events)
    }

    /// The cycle of the next not-yet-applied fault, if any. Batching uses
    /// this to bound the quiescence horizon.
    pub fn next_cycle(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.at_cycle)
    }

    /// Pops the next fault if it is due at or before `now`.
    pub fn take_due(&mut self, now: u64) -> Option<FaultEvent> {
        let e = *self.events.get(self.cursor)?;
        if e.at_cycle <= now {
            self.cursor += 1;
            Some(e)
        } else {
            None
        }
    }

    /// All events, applied or not, in schedule order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// How many faults have been applied so far.
    pub fn applied(&self) -> usize {
        self.cursor
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Resets the cursor so the plan can drive a fresh run.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Serializes the schedule and cursor for a machine-state snapshot.
    /// Already-applied events are kept so a restored plan replays the
    /// original exactly (same events, same cursor).
    pub fn to_snap(&self) -> Json {
        let events: Vec<Json> = self.events.iter().map(fault_event_to_snap).collect();
        Json::object()
            .with("cursor", self.cursor)
            .with("events", Json::Array(events))
    }

    /// Rebuilds a plan from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on missing fields, an unknown fault kind, or a cursor past
    /// the end of the schedule.
    pub fn from_snap(value: &Json) -> Result<FaultPlan, SnapError> {
        let cursor = snap::get_usize(value, "cursor")?;
        let mut events = Vec::new();
        for e in snap::get_array(value, "events")? {
            events.push(fault_event_from_snap(e)?);
        }
        if cursor > events.len() {
            return Err(SnapError::new("fault plan: cursor beyond schedule"));
        }
        Ok(FaultPlan { events, cursor })
    }
}

fn fault_event_to_snap(e: &FaultEvent) -> Json {
    let mut obj = Json::object()
        .with("at_cycle", e.at_cycle)
        .with("kind", e.kind.name());
    match e.kind {
        FaultKind::RegFlip { reg, bit } => {
            obj.push("reg", u64::from(reg.number()));
            obj.push("bit", u64::from(bit));
        }
        FaultKind::CsrFlip { csr, bit } => {
            obj.push("csr", u64::from(csr));
            obj.push("bit", u64::from(bit));
        }
        FaultKind::MemFlip { addr, bit } | FaultKind::ImemFlip { addr, bit } => {
            obj.push("addr", addr);
            obj.push("bit", u64::from(bit));
        }
        FaultKind::CacheUpset { addr } => obj.push("addr", addr),
        FaultKind::DelayIrq { delay } => obj.push("delay", delay),
        FaultKind::BusError
        | FaultKind::SpuriousIrq
        | FaultKind::DropIrq
        | FaultKind::SpuriousIpi => {}
    }
    obj
}

fn fault_event_from_snap(value: &Json) -> Result<FaultEvent, SnapError> {
    let at_cycle = snap::get_u64(value, "at_cycle")?;
    let bit = |v: &Json| snap::get_u8(v, "bit");
    let kind = match snap::get_str(value, "kind")? {
        "reg_flip" => FaultKind::RegFlip {
            reg: Reg::from_number(snap::get_u8(value, "reg")? & 31),
            bit: bit(value)?,
        },
        "csr_flip" => FaultKind::CsrFlip {
            csr: u16::try_from(snap::get_u64(value, "csr")?)
                .map_err(|_| SnapError::new("fault csr: exceeds u16"))?,
            bit: bit(value)?,
        },
        "mem_flip" => FaultKind::MemFlip {
            addr: snap::get_u32(value, "addr")?,
            bit: bit(value)?,
        },
        "imem_flip" => FaultKind::ImemFlip {
            addr: snap::get_u32(value, "addr")?,
            bit: bit(value)?,
        },
        "cache_upset" => FaultKind::CacheUpset {
            addr: snap::get_u32(value, "addr")?,
        },
        "bus_error" => FaultKind::BusError,
        "spurious_irq" => FaultKind::SpuriousIrq,
        "drop_irq" => FaultKind::DropIrq,
        "delay_irq" => FaultKind::DelayIrq {
            delay: snap::get_u32(value, "delay")?,
        },
        "spurious_ipi" => FaultKind::SpuriousIpi,
        other => return Err(SnapError::new(format!("fault: unknown kind `{other}`"))),
    };
    Ok(FaultEvent { at_cycle, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible_and_sorted() {
        let targets = FaultTargets {
            mem_words: vec![0x2000_0000, 0x2000_0040],
            csrs: vec![rvsim_isa::csr::MEPC],
        };
        let a = FaultPlan::generate(7, 50, 100..5000, &targets);
        let b = FaultPlan::generate(7, 50, 100..5000, &targets);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a
            .events()
            .windows(2)
            .all(|w| w[0].at_cycle <= w[1].at_cycle));
        assert!(a.events().iter().all(|e| (100..5000).contains(&e.at_cycle)));
        let c = FaultPlan::generate(8, 50, 100..5000, &targets);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn take_due_pops_in_order() {
        let mut p = FaultPlan::new(vec![
            FaultEvent {
                at_cycle: 30,
                kind: FaultKind::BusError,
            },
            FaultEvent {
                at_cycle: 10,
                kind: FaultKind::SpuriousIrq,
            },
        ]);
        assert_eq!(p.next_cycle(), Some(10));
        assert!(p.take_due(5).is_none());
        assert_eq!(p.take_due(10).map(|e| e.kind), Some(FaultKind::SpuriousIrq));
        assert_eq!(p.next_cycle(), Some(30));
        assert_eq!(p.take_due(100).map(|e| e.kind), Some(FaultKind::BusError));
        assert!(p.take_due(1000).is_none());
        assert_eq!(p.applied(), 2);
        p.rewind();
        assert_eq!(p.applied(), 0);
        assert_eq!(p.next_cycle(), Some(10));
    }

    #[test]
    fn imem_flip_has_a_stable_code_but_is_never_generated() {
        let kind = FaultKind::ImemFlip { addr: 0x40, bit: 3 };
        assert_eq!(kind.name(), "imem_flip");
        assert_eq!(kind.code(), 10);
        assert_eq!(fault_code_name(10), "imem_flip");
        // Generated plans are pinned by regression seeds: the random
        // table must not include IMEM flips.
        let targets = FaultTargets {
            mem_words: vec![0x2000_0000],
            csrs: vec![rvsim_isa::csr::MEPC],
        };
        let p = FaultPlan::generate(11, 200, 0..10_000, &targets);
        assert!(p
            .events()
            .iter()
            .all(|e| !matches!(e.kind, FaultKind::ImemFlip { .. })));
    }

    #[test]
    fn empty_target_classes_reroll_without_hanging() {
        let p = FaultPlan::generate(3, 40, 0..1000, &FaultTargets::default());
        assert_eq!(p.len(), 40);
        assert!(p.events().iter().all(|e| !matches!(
            e.kind,
            FaultKind::MemFlip { .. } | FaultKind::CsrFlip { .. }
        )));
    }
}
