//! Per-engine activity counters: where the core's cycles went.
//!
//! The engine attributes every non-issue cycle to a cause **at issue
//! time** (the drain length of an instruction is fully decided when it
//! issues), so the batched [`run_until`](crate::CoreEngine::run_until)
//! fast path — which burns stall stretches in bulk — produces counter
//! values identical to per-cycle stepping. The batching differential
//! tests assert this.
//!
//! Counters are plain integers, always on (a handful of adds per
//! retired instruction), and read out as a [`CoreCounters`] snapshot.

use rvsim_snapshot::{self as snap, Json, SnapError};

/// Snapshot of one engine's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Fetches served from the decoded-instruction cache.
    pub decode_hits: u64,
    /// Fetches that had to decode the IMEM word.
    pub decode_misses: u64,
    /// Superscalar pairs issued (second instruction was free).
    pub issued_pairs: u64,
    /// Stall cycles from execute-stage latency (mul/div, CSR, custom).
    pub stall_exec: u64,
    /// Stall cycles from the memory port: load/store base latency plus
    /// cache misses, write-throughs and bus contention.
    pub stall_mem: u64,
    /// Stall cycles from control flow (branch/jump penalties).
    pub stall_control: u64,
    /// Pipeline-flush cycles on interrupt entry.
    pub stall_irq_entry: u64,
    /// Drain cycles of `mret` (including coprocessor-imposed latency).
    pub stall_mret: u64,
    /// Cycles where issue was gated by a coprocessor stall
    /// (`SWITCH_RF` handshakes, `mret` held for background restore).
    pub stall_coproc: u64,
    /// Cycles parked in `wfi`.
    pub wfi_cycles: u64,
    /// Basic-block dispatches served from the translation cache (block
    /// cache enabled only; zero on the interpreter path).
    pub block_hits: u64,
    /// Basic blocks translated into the cache (first builds plus
    /// retranslations after invalidation).
    pub block_builds: u64,
    /// Fused macro-op executions (each retires two guest instructions).
    pub fused_ops: u64,
}

impl CoreCounters {
    /// Total stall cycles across all causes (excluding `wfi` parking).
    pub fn total_stalls(&self) -> u64 {
        self.stall_exec
            + self.stall_mem
            + self.stall_control
            + self.stall_irq_entry
            + self.stall_mret
            + self.stall_coproc
    }

    /// `(name, value)` pairs in a stable order, for machine-readable
    /// artifacts.
    pub fn named(&self) -> [(&'static str, u64); 13] {
        [
            ("decode_hits", self.decode_hits),
            ("decode_misses", self.decode_misses),
            ("issued_pairs", self.issued_pairs),
            ("stall_exec", self.stall_exec),
            ("stall_mem", self.stall_mem),
            ("stall_control", self.stall_control),
            ("stall_irq_entry", self.stall_irq_entry),
            ("stall_mret", self.stall_mret),
            ("stall_coproc", self.stall_coproc),
            ("wfi_cycles", self.wfi_cycles),
            ("block_hits", self.block_hits),
            ("block_builds", self.block_builds),
            ("fused_ops", self.fused_ops),
        ]
    }

    /// This snapshot with the block-cache bookkeeping fields zeroed.
    ///
    /// The block cache changes *how* the engine executes, never *what*
    /// it executes: every architectural counter (decode cache, pairing,
    /// stall attribution, `wfi` parking) must match the interpreter
    /// exactly. The bookkeeping trio (`block_hits`, `block_builds`,
    /// `fused_ops`) records fast-path machinery that the interpreter by
    /// definition never exercises, so equivalence tests compare through
    /// this view.
    pub fn without_block_stats(&self) -> CoreCounters {
        CoreCounters {
            block_hits: 0,
            block_builds: 0,
            fused_ops: 0,
            ..*self
        }
    }

    /// Serializes every counter (stable [`named`](Self::named) order) for
    /// a machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        let mut obj = Json::object();
        for (name, value) in self.named() {
            obj.push(name, value);
        }
        obj
    }

    /// Rebuilds the counters from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on missing or non-integer fields.
    pub fn from_snap(value: &Json) -> Result<CoreCounters, SnapError> {
        Ok(CoreCounters {
            decode_hits: snap::get_u64(value, "decode_hits")?,
            decode_misses: snap::get_u64(value, "decode_misses")?,
            issued_pairs: snap::get_u64(value, "issued_pairs")?,
            stall_exec: snap::get_u64(value, "stall_exec")?,
            stall_mem: snap::get_u64(value, "stall_mem")?,
            stall_control: snap::get_u64(value, "stall_control")?,
            stall_irq_entry: snap::get_u64(value, "stall_irq_entry")?,
            stall_mret: snap::get_u64(value, "stall_mret")?,
            stall_coproc: snap::get_u64(value, "stall_coproc")?,
            wfi_cycles: snap::get_u64(value, "wfi_cycles")?,
            block_hits: snap::get_u64(value, "block_hits")?,
            block_builds: snap::get_u64(value, "block_builds")?,
            fused_ops: snap::get_u64(value, "fused_ops")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_names_are_consistent() {
        let c = CoreCounters {
            stall_exec: 1,
            stall_mem: 2,
            stall_control: 3,
            stall_irq_entry: 4,
            stall_mret: 5,
            stall_coproc: 6,
            wfi_cycles: 100,
            ..CoreCounters::default()
        };
        assert_eq!(c.total_stalls(), 21);
        let named = c.named();
        assert_eq!(named.len(), 13);
        assert!(named.iter().any(|&(n, v)| n == "wfi_cycles" && v == 100));
    }

    #[test]
    fn without_block_stats_zeroes_only_the_bookkeeping_trio() {
        let c = CoreCounters {
            decode_hits: 7,
            issued_pairs: 3,
            block_hits: 40,
            block_builds: 5,
            fused_ops: 11,
            ..CoreCounters::default()
        };
        let v = c.without_block_stats();
        assert_eq!(v.decode_hits, 7);
        assert_eq!(v.issued_pairs, 3);
        assert_eq!(v.block_hits, 0);
        assert_eq!(v.block_builds, 0);
        assert_eq!(v.fused_ops, 0);
    }
}
