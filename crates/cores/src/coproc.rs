//! The interface between a core and an attached accelerator.
//!
//! The paper integrates the RTOSUnit "as a standard functional unit" (§5):
//! the core reports interrupt entries, `mret`, and custom instructions, and
//! grants the unit idle data-port cycles. This trait is that integration
//! surface; `rtosunit::RtosUnit` implements it, and [`NullCoprocessor`]
//! stands in for an unmodified (vanilla) core.

use crate::engine::DataBus;
use crate::state::ArchState;
use rvsim_isa::CustomOp;

/// Hooks called by the [`CoreEngine`](crate::engine::CoreEngine).
pub trait Coprocessor {
    /// Called once per interrupt entry, after the architectural entry
    /// (mepc/mcause/mstatus) completed. The unit may switch register banks
    /// and start its store FSM here.
    fn on_interrupt_entry(&mut self, state: &mut ArchState, cause: u32);

    /// Whether `mret` must stall this cycle (e.g. context restore still in
    /// flight, paper §4.3).
    fn mret_stall(&self) -> bool;

    /// Called when `mret` retires. The unit may switch back to the
    /// application bank and clear dirty bits here.
    fn on_mret(&mut self, state: &mut ArchState);

    /// Whether the given custom instruction must stall this cycle
    /// (e.g. `SWITCH_RF` while context storing is in progress, §4.2).
    fn custom_stall(&self, op: CustomOp) -> bool;

    /// Executes a custom instruction with resolved operand values and
    /// returns the `rd` result (only meaningful for `GET_HW_SCHED`).
    fn exec_custom(&mut self, op: CustomOp, rs1: u32, rs2: u32, state: &mut ArchState) -> u32;

    /// One background cycle: FSMs may use an idle data-port cycle via
    /// [`DataBus::unit_access`].
    fn step(&mut self, state: &mut ArchState, bus: &mut dyn DataBus);

    /// Whether the unit has no background work in flight — no store or
    /// restore FSM activity, no pending scheduler sort, no preload to run —
    /// so that skipping its per-cycle [`step`](Self::step) calls is
    /// observationally equivalent to making them. Batched execution
    /// ([`CoreEngine::run_until`](crate::engine::CoreEngine::run_until)) is
    /// only entered while this holds. Default: `false` (always poll).
    fn is_idle(&self) -> bool {
        false
    }
}

/// The "no RTOSUnit attached" coprocessor: every hook is a no-op and
/// custom instructions are rejected.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCoprocessor;

impl Coprocessor for NullCoprocessor {
    fn on_interrupt_entry(&mut self, _state: &mut ArchState, _cause: u32) {}

    fn mret_stall(&self) -> bool {
        false
    }

    fn on_mret(&mut self, _state: &mut ArchState) {}

    fn custom_stall(&self, _op: CustomOp) -> bool {
        false
    }

    fn exec_custom(&mut self, op: CustomOp, _rs1: u32, _rs2: u32, _state: &mut ArchState) -> u32 {
        panic!("custom instruction {op} executed on a core without an RTOSUnit")
    }

    fn step(&mut self, _state: &mut ArchState, _bus: &mut dyn DataBus) {}

    fn is_idle(&self) -> bool {
        true
    }
}
