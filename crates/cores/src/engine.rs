//! The cycle-stepped core engine.
//!
//! One [`CoreEngine::step`] call advances the core by exactly one cycle.
//! Instructions are executed functionally at issue and then occupy the
//! pipeline for their modelled latency; interrupts are taken at
//! instruction boundaries; `mret` and `SWITCH_RF` honour coprocessor
//! stalls (paper §4.2/§4.3). The engine owns the instruction memory
//! (separate fetch port — the data port belongs to the [`DataBus`]).

use crate::blockcache::{BlockCache, BlockOutcome};
use crate::coproc::Coprocessor;
use crate::counters::CoreCounters;
use crate::exec::{execute, MemRequest};
use crate::profile::PcProfile;
use crate::state::ArchState;
use crate::timing::TimingParams;
use rvsim_isa::{decode, disassemble, Instr, Program};
use rvsim_mem::{AccessSize, Mem};
use rvsim_snapshot::{self as snap, Json, SnapError};

/// Response of the data bus to a core access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusResponse {
    /// Loaded data (zero for stores).
    pub data: u32,
    /// Extra cycles beyond the instruction's base latency.
    pub extra_latency: u32,
}

/// The core-facing memory interface, implemented by the platform
/// (`rtosunit::Platform`). It owns RAM, caches, MMIO and the shared-port
/// arbitration of paper §4.2.
pub trait DataBus {
    /// Performs a core access (`write = Some(value)` for stores) with core
    /// priority, returning data and extra latency.
    fn core_access(&mut self, addr: u32, size: AccessSize, write: Option<u32>) -> BusResponse;

    /// Attempts a word-sized RTOSUnit access using an idle port cycle.
    /// Returns `None` when the port is not available this cycle, otherwise
    /// the loaded data (zero for stores).
    fn unit_access(&mut self, addr: u32, write: Option<u32>) -> Option<u32>;

    /// Word access over a *dedicated* second memory port (used by the
    /// CV32RT comparison design; always granted, bypasses any cache).
    ///
    /// # Panics
    ///
    /// The default implementation panics: buses without a dedicated port
    /// must not receive such accesses.
    fn dedicated_access(&mut self, addr: u32, write: Option<u32>) -> u32 {
        let _ = write;
        panic!("this data bus has no dedicated port (access to {addr:#010x})")
    }

    /// Invalidates the cache line containing `addr`, if a cache exists
    /// (needed after dedicated-port writes bypass it). Default: no-op.
    fn invalidate_line(&mut self, addr: u32) {
        let _ = addr;
    }

    /// Number of unit accesses still in flight in the LSU's ctxQueue
    /// (paper §5.3). Zero on buses without such a queue; the RTOSUnit
    /// holds `SWITCH_RF`/`mret` until issued work has drained.
    fn unit_pending(&self) -> u32 {
        0
    }

    /// Advances the bus-side clock by `cycles` at once — the bulk
    /// equivalent of that many per-cycle housekeeping steps with no port
    /// activity in between. [`CoreEngine::run_until`] calls this before
    /// simulating each stretch of cycles so timers, busy counters and
    /// occupancy statistics stay cycle-exact without a call per cycle.
    /// Default: no-op (timer-less test buses).
    fn advance_cycles(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// Returns and clears the bus attention flag: set when a bus-side
    /// write may have changed interrupt or halt state (e.g. an MMIO store
    /// to a timer comparator), invalidating any precomputed quiescence
    /// horizon. [`CoreEngine::run_until`] polls it after every issue cycle
    /// and stops the batch when raised. Default: never raised.
    fn take_attention(&mut self) -> bool {
        false
    }
}

/// Externally visible per-cycle events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreEvent {
    /// An interrupt was taken; the core is entering the ISR.
    InterruptEntered {
        /// The `mcause` value.
        cause: u32,
    },
    /// A synchronous exception (misaligned fetch/load/store) trapped; the
    /// core is entering the handler. The faulting instruction did not
    /// retire. Unlike interrupt entry, the coprocessor is *not* notified:
    /// exceptions stay on the application register bank (kernel guests
    /// never fault; this path exists for the differential harness).
    ExceptionEntered {
        /// The `mcause` value (high bit clear).
        cause: u32,
    },
    /// `mret` finished executing (the paper's latency end-point).
    MretRetired,
    /// The guest executed `ebreak`/`ecall` — simulation stops.
    Halted,
}

/// Result of one [`CoreEngine::step`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepOutput {
    /// Event raised this cycle, if any.
    pub event: Option<CoreEvent>,
    /// A coprocessor custom instruction executed this cycle (the
    /// coprocessor's state may have changed — batched runs stop here).
    pub custom: bool,
}

/// Bit mask of [`CoreEvent`]s that stop [`CoreEngine::run_until`].
pub mod stop_events {
    /// Stop when an interrupt is taken.
    pub const INTERRUPT_ENTERED: u32 = 1 << 0;
    /// Stop when `mret` retires.
    pub const MRET_RETIRED: u32 = 1 << 1;
    /// Stop when the guest halts.
    pub const HALTED: u32 = 1 << 2;
    /// Stop when a synchronous exception traps.
    pub const EXCEPTION_ENTERED: u32 = 1 << 3;
    /// Stop on every event.
    pub const ALL: u32 = INTERRUPT_ENTERED | MRET_RETIRED | HALTED | EXCEPTION_ENTERED;
}

pub(crate) fn event_bit(ev: CoreEvent) -> u32 {
    match ev {
        CoreEvent::InterruptEntered { .. } => stop_events::INTERRUPT_ENTERED,
        CoreEvent::ExceptionEntered { .. } => stop_events::EXCEPTION_ENTERED,
        CoreEvent::MretRetired => stop_events::MRET_RETIRED,
        CoreEvent::Halted => stop_events::HALTED,
    }
}

/// Why [`CoreEngine::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// An event matching the stop mask fired on the final cycle.
    Event,
    /// A coprocessor custom instruction executed on the final cycle.
    CustomExecuted,
    /// The bus raised its attention flag on the final cycle.
    Attention,
    /// The cycle budget ran out (or the core was already halted).
    Budget,
}

/// Result of one [`CoreEngine::run_until`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchExit {
    /// Cycles consumed by the batch.
    pub cycles: u64,
    /// Event raised on the final cycle, if any.
    pub event: Option<CoreEvent>,
    /// Why the batch ended.
    pub reason: StopReason,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Completing {
    Plain,
    Mret,
}

/// Folded block-translation statistics for a PC range (see
/// [`CoreEngine::block_stats_in`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Translations whose entry PC lies in the range (first builds plus
    /// retranslations after invalidation).
    pub builds: u64,
    /// Block dispatches entered in the range.
    pub execs: u64,
    /// Fused macro-op executions inside those dispatches.
    pub fused: u64,
    /// Distinct entry PCs translated in the range; `builds - entries` is
    /// the number of retranslations forced by invalidation.
    pub entries: u64,
}

impl BlockStats {
    /// Fraction of dispatches served without a (re)translation, in
    /// [0, 1]. Zero when the range was never dispatched.
    pub fn hit_rate(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            (self.execs - self.builds.min(self.execs)) as f64 / self.execs as f64
        }
    }

    /// Translations beyond the first per entry PC — each one paid for an
    /// invalidation (imem write, fault-injected flip or `fence.i`).
    pub fn retranslations(&self) -> u64 {
        self.builds.saturating_sub(self.entries)
    }
}

/// Fixed-depth ring of the last retired `(cycle, pc)` pairs — the
/// "recent instructions" debug trace. Replaces a `VecDeque` in the
/// per-retirement hot path: a push is one store plus a wrapping bump,
/// never a shift or reallocation.
pub(crate) struct RetireRing {
    buf: Box<[(u64, u32)]>,
    /// Next write slot.
    head: usize,
    len: usize,
}

impl RetireRing {
    fn new(depth: usize) -> RetireRing {
        RetireRing {
            buf: vec![(0, 0); depth].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Records a retirement, dropping the oldest entry once full.
    #[inline]
    pub(crate) fn push(&mut self, entry: (u64, u32)) {
        self.buf[self.head] = entry;
        self.head += 1;
        if self.head == self.buf.len() {
            self.head = 0;
        }
        if self.len < self.buf.len() {
            self.len += 1;
        }
    }

    /// Un-records the newest entry (a retirement squashed by a trap).
    #[inline]
    pub(crate) fn pop_back(&mut self) {
        debug_assert!(self.len > 0, "pop from an empty retire ring");
        self.head = self.head.checked_sub(1).unwrap_or(self.buf.len() - 1);
        self.len -= 1;
    }

    /// The net effect of the interpreter's push-then-pop-back when the
    /// ring is full: the oldest entry is gone, nothing new is kept.
    #[inline]
    pub(crate) fn drop_oldest_if_full(&mut self) {
        if self.len == self.buf.len() {
            self.len -= 1;
        }
    }

    /// Entries oldest-first.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        let depth = self.buf.len();
        let start = self.head + depth - self.len;
        (0..self.len).map(move |i| self.buf[(start + i) % depth])
    }
}

/// A cycle-stepped RV32IM_Zicsr core. Construct via
/// [`make_engine`](crate::models::make_engine) or [`CoreEngine::new`].
pub struct CoreEngine {
    /// Timing parameters of the modelled microarchitecture.
    pub params: TimingParams,
    /// Architectural state (register banks, CSRs, PC).
    pub state: ArchState,
    pub(crate) imem: Mem,
    pub(crate) decoded: Vec<Option<Instr>>,
    pub(crate) busy: u32,
    completing: Completing,
    wfi_wait: bool,
    halted: bool,
    pub(crate) cycle: u64,
    pub(crate) retired: u64,
    predictor: Vec<u8>,
    pub(crate) trace: RetireRing,
    pub(crate) counters: CoreCounters,
    profiler: Option<Box<PcProfile>>,
    wfi_pc: u32,
    /// Basic-block translation cache ([`set_block_cache`](Self::set_block_cache)).
    pub(crate) blocks: Option<Box<BlockCache>>,
}

impl std::fmt::Debug for CoreEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreEngine")
            .field("core", &self.params.name)
            .field("cycle", &self.cycle)
            .field("pc", &format_args!("{:#010x}", self.state.pc))
            .field("retired", &self.retired)
            .field("halted", &self.halted)
            .finish()
    }
}

impl CoreEngine {
    /// Creates an engine with an instruction memory at `imem_base` of
    /// `imem_size` bytes. The PC starts at `imem_base`.
    pub fn new(params: TimingParams, imem_base: u32, imem_size: u32) -> CoreEngine {
        CoreEngine {
            params,
            state: ArchState::new(imem_base),
            imem: Mem::new(imem_base, imem_size),
            decoded: vec![None; imem_size.div_ceil(4) as usize],
            busy: 0,
            completing: Completing::Plain,
            wfi_wait: false,
            halted: false,
            cycle: 0,
            retired: 0,
            predictor: vec![1; 256],
            trace: RetireRing::new(64),
            counters: CoreCounters::default(),
            profiler: None,
            wfi_pc: 0,
            blocks: None,
        }
    }

    /// Loads an assembled program into instruction memory and resets the
    /// PC to its entry point (`program.base`).
    pub fn load_program(&mut self, program: &Program) {
        self.imem.load_words(program.base, &program.words);
        for w in &mut self.decoded {
            *w = None;
        }
        if let Some(cache) = &mut self.blocks {
            cache.reset();
        }
        self.state.pc = program.base;
    }

    /// Drops the cached decode of the instruction word containing `addr`.
    /// Callers that rewrite a single IMEM word (loaders, test harnesses,
    /// self-modifying guests) must invalidate it here instead of paying a
    /// full [`load_program`](Self::load_program)-style flush.
    pub fn invalidate_decoded(&mut self, addr: u32) {
        if !self.imem.contains(addr) {
            return;
        }
        let idx = ((addr - self.imem.base()) / 4) as usize;
        if let Some(slot) = self.decoded.get_mut(idx) {
            *slot = None;
        }
        if let Some(cache) = &mut self.blocks {
            cache.invalidate_word(addr);
        }
    }

    /// Rewrites one instruction-memory word and invalidates its cached
    /// decode, keeping fetch coherent with the new bytes.
    pub fn write_imem_word(&mut self, addr: u32, word: u32) {
        self.imem.write_word(addr, word);
        self.invalidate_decoded(addr);
    }

    /// Reads one instruction-memory word, or `None` outside IMEM. Fault
    /// injectors pair this with [`write_imem_word`](Self::write_imem_word)
    /// to flip bits without bypassing decode/block invalidation.
    pub fn imem_word(&self, addr: u32) -> Option<u32> {
        self.imem.contains(addr).then(|| self.imem.read_word(addr))
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the guest halted (`ebreak`/`ecall`).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether the core is parked in `wfi`.
    pub fn waiting_for_interrupt(&self) -> bool {
        self.wfi_wait
    }

    /// The last retired `(cycle, pc)` pairs, oldest first (debug aid).
    pub fn recent_pcs(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.trace.iter()
    }

    /// Snapshot of the activity counters. Stall cycles are attributed at
    /// issue time, so the snapshot is identical whether the engine ran
    /// per-cycle or through batched [`run_until`](Self::run_until).
    pub fn counters(&self) -> CoreCounters {
        self.counters
    }

    /// Attaches (or detaches) the basic-block translation cache. With the
    /// cache on, batched [`run_until`](Self::run_until) executes
    /// pre-decoded micro-op blocks per dispatch instead of stepping the
    /// interpreter per cycle — architecturally and timing-wise
    /// bit-identical (see [`crate::blockcache`]), just faster on the
    /// host. Per-cycle [`step`](Self::step) always interprets.
    pub fn set_block_cache(&mut self, on: bool) {
        if on {
            if self.blocks.is_none() {
                self.blocks = Some(Box::new(BlockCache::new(
                    self.imem.base(),
                    self.imem.end() - self.imem.base(),
                )));
            }
        } else {
            self.blocks = None;
        }
    }

    /// Whether the basic-block translation cache is attached.
    pub fn block_cache_enabled(&self) -> bool {
        self.blocks.is_some()
    }

    /// Block-translation statistics for blocks *entered* at a PC in
    /// `[start, end]` (inclusive), including translations since killed by
    /// invalidation. All zeros when the cache is off.
    pub fn block_stats_in(&self, start: u32, end: u32) -> BlockStats {
        self.blocks
            .as_ref()
            .map_or_else(BlockStats::default, |c| c.stats_in(start, end))
    }

    /// Turns the guest PC profiler on (fresh bins over the instruction
    /// memory) or off. Profiling only *counts* — timing, architectural
    /// state and events are unchanged, and because cycles are attributed
    /// at issue time (like the activity counters) the profile is
    /// bit-identical between per-cycle and batched execution.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiler = on.then(|| {
            Box::new(PcProfile::new(
                self.imem.base(),
                self.imem.end() - self.imem.base(),
            ))
        });
    }

    /// The accumulated profile, if profiling is on.
    pub fn profile(&self) -> Option<&PcProfile> {
        self.profiler.as_deref()
    }

    /// Takes the accumulated profile, turning profiling off.
    pub fn take_profile(&mut self) -> Option<PcProfile> {
        self.profiler.take().map(|p| *p)
    }

    /// Folds a profile into ranked basic blocks using this engine's own
    /// instruction decoder (see [`PcProfile::hot_blocks`]).
    pub fn hot_blocks(&mut self, profile: &PcProfile) -> Vec<crate::profile::HotBlock> {
        profile.hot_blocks(|pc| self.peek(pc))
    }

    /// Renders a profile as folded-stack lines under `root` (see
    /// [`PcProfile::folded`]).
    pub fn folded_profile(&mut self, profile: &PcProfile, root: &str) -> String {
        profile.folded(root, |pc| self.peek(pc))
    }

    #[inline]
    pub(crate) fn attribute(&mut self, pc: u32, cycles: u64) {
        if let Some(p) = &mut self.profiler {
            p.add(pc, cycles);
        }
    }

    fn fetch(&mut self, pc: u32) -> Instr {
        let idx = ((pc - self.imem.base()) / 4) as usize;
        if let Some(Some(i)) = self.decoded.get(idx) {
            self.counters.decode_hits += 1;
            return *i;
        }
        self.counters.decode_misses += 1;
        let word = self.imem.read_word(pc);
        let instr = decode(word).unwrap_or_else(|e| {
            let mut dump = String::new();
            for (cyc, tpc) in self.trace.iter() {
                dump.push_str(&format!("  cycle {cyc}: pc {tpc:#010x}\n"));
            }
            panic!("{e} at pc {pc:#010x}; recent instructions:\n{dump}")
        });
        self.decoded[idx] = Some(instr);
        instr
    }

    pub(crate) fn peek(&mut self, pc: u32) -> Option<Instr> {
        if !self.imem.contains(pc) {
            return None;
        }
        let idx = ((pc - self.imem.base()) / 4) as usize;
        if let Some(Some(i)) = self.decoded.get(idx) {
            return Some(*i);
        }
        decode(self.imem.read_word(pc)).ok().inspect(|i| {
            self.decoded[idx] = Some(*i);
        })
    }

    pub(crate) fn is_simple(instr: &Instr) -> bool {
        matches!(
            instr,
            Instr::OpImm { .. } | Instr::Op { .. } | Instr::Lui { .. } | Instr::Auipc { .. }
        )
    }

    pub(crate) fn predict_taken(&mut self, pc: u32, actual: bool) -> bool {
        let idx = ((pc >> 2) as usize) % self.predictor.len();
        let counter = &mut self.predictor[idx];
        let predicted = *counter >= 2;
        if actual {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        predicted
    }

    fn control_latency(&mut self, instr: &Instr, taken: bool, pc: u32) -> u32 {
        let p = self.params;
        match instr {
            Instr::Branch { .. } => {
                if p.has_predictor {
                    let predicted = self.predict_taken(pc, taken);
                    if predicted == taken {
                        1
                    } else {
                        1 + p.branch_penalty
                    }
                } else if taken {
                    1 + p.branch_penalty
                } else {
                    1
                }
            }
            Instr::Jal { .. } => 1 + p.jump_penalty,
            Instr::Jalr { .. } => 1 + p.jalr_penalty,
            _ => 1,
        }
    }

    /// Advances the core by one cycle.
    ///
    /// The platform must have refreshed `state.csrs.mip` before calling
    /// this, and should step the coprocessor *after* it (the RTOSUnit uses
    /// the data-port cycles the core left idle).
    pub fn step(&mut self, bus: &mut dyn DataBus, coproc: &mut dyn Coprocessor) -> StepOutput {
        self.cycle += 1;
        self.state.csrs.mcycle = self.cycle as u32;
        let mut out = StepOutput::default();
        if self.halted {
            return out;
        }

        // Drain an in-flight multi-cycle instruction.
        if self.busy > 0 {
            self.busy -= 1;
            if self.busy == 0 && self.completing == Completing::Mret {
                self.completing = Completing::Plain;
                coproc.on_mret(&mut self.state);
                out.event = Some(CoreEvent::MretRetired);
            }
            return out;
        }

        // Wake from wfi as soon as an interrupt is pending (even if
        // globally masked, per the RISC-V spec).
        if self.wfi_wait {
            if self.state.csrs.mip & self.state.csrs.mie != 0 {
                self.wfi_wait = false;
            } else {
                self.counters.wfi_cycles += 1;
                let pc = self.wfi_pc;
                self.attribute(pc, 1);
                return out;
            }
        }

        // Take a pending interrupt at the instruction boundary.
        if self.state.csrs.mie_enabled() {
            if let Some(cause) = self.state.csrs.pending_interrupt() {
                let target = self.state.csrs.enter_trap(self.state.pc, cause);
                self.state.pc = target;
                coproc.on_interrupt_entry(&mut self.state, cause);
                self.busy = self.params.irq_entry_latency.saturating_sub(1);
                self.counters.stall_irq_entry += u64::from(self.busy);
                // The whole entry flush is charged to the handler's first
                // instruction — ISR prologues show their true entry cost.
                self.attribute(target, 1 + u64::from(self.busy));
                out.event = Some(CoreEvent::InterruptEntered { cause });
                return out;
            }
        }

        // Issue one instruction (two when the superscalar model pairs
        // independent simple ALU operations).
        let mut paired = false;
        loop {
            let pc = self.state.pc;

            // Instruction-address-misaligned exception: trap instead of
            // fetching. Nothing retires; the entry cost matches interrupt
            // entry (same pipeline flush).
            if pc & 3 != 0 {
                let target = self
                    .state
                    .csrs
                    .enter_trap(pc, rvsim_isa::csr::CAUSE_MISALIGNED_FETCH);
                self.state.pc = target;
                self.busy = self.params.irq_entry_latency.saturating_sub(1);
                self.counters.stall_irq_entry += u64::from(self.busy);
                self.attribute(target, 1 + u64::from(self.busy));
                out.event = Some(CoreEvent::ExceptionEntered {
                    cause: rvsim_isa::csr::CAUSE_MISALIGNED_FETCH,
                });
                return out;
            }

            let instr = self.fetch(pc);

            // Coprocessor stalls gate issue.
            if let Instr::Custom { op, .. } = instr {
                if coproc.custom_stall(op) {
                    self.counters.stall_coproc += 1;
                    self.attribute(pc, 1);
                    return out;
                }
            }
            if matches!(instr, Instr::Mret) && coproc.mret_stall() {
                self.counters.stall_coproc += 1;
                self.attribute(pc, 1);
                return out;
            }

            let outcome = execute(&mut self.state, &instr, pc);
            // `fence.i` orders fetch after writes: drop every block
            // translation (the per-word decode cache is kept coherent by
            // the IMEM write paths themselves).
            if matches!(instr, Instr::Fence) {
                if let Some(cache) = &mut self.blocks {
                    cache.flush();
                }
            }
            self.state.pc = outcome.next_pc;
            self.retired += 1;
            self.trace.push((self.cycle, pc));

            let p = self.params;
            let mut latency = match instr {
                Instr::MulDiv { op, .. } => match op {
                    rvsim_isa::MulDivOp::Mul
                    | rvsim_isa::MulDivOp::Mulh
                    | rvsim_isa::MulDivOp::Mulhsu
                    | rvsim_isa::MulDivOp::Mulhu => p.mul_latency,
                    _ => p.div_latency,
                },
                Instr::Csr { .. } => p.csr_latency,
                Instr::Custom { .. } => p.custom_latency,
                Instr::Load { .. } => p.load_base_latency,
                Instr::Store { .. } => p.store_latency,
                Instr::Mret => p.mret_latency,
                _ => self.control_latency(&instr, outcome.taken_branch, pc),
            };

            // Address-misaligned accesses trap before touching the bus
            // (the `Mem` backing store rejects them); the faulting
            // instruction does not retire and writes nothing.
            if let Some(req) = &outcome.mem {
                let (addr, size, cause) = match *req {
                    MemRequest::Load { addr, size, .. } => {
                        (addr, size, rvsim_isa::csr::CAUSE_MISALIGNED_LOAD)
                    }
                    MemRequest::Store { addr, size, .. } => {
                        (addr, size, rvsim_isa::csr::CAUSE_MISALIGNED_STORE)
                    }
                };
                if addr % size.bytes() != 0 {
                    self.retired -= 1;
                    self.trace.pop_back();
                    let target = self.state.csrs.enter_trap(pc, cause);
                    self.state.pc = target;
                    self.busy = self.params.irq_entry_latency.saturating_sub(1);
                    self.counters.stall_irq_entry += u64::from(self.busy);
                    self.attribute(target, 1 + u64::from(self.busy));
                    out.event = Some(CoreEvent::ExceptionEntered { cause });
                    return out;
                }
            }

            match outcome.mem {
                Some(MemRequest::Load {
                    addr,
                    size,
                    signed,
                    rd,
                }) => {
                    let resp = bus.core_access(addr, size, None);
                    let value = match (size, signed) {
                        (AccessSize::Byte, true) => resp.data as u8 as i8 as i32 as u32,
                        (AccessSize::Byte, false) => resp.data & 0xff,
                        (AccessSize::Half, true) => resp.data as u16 as i16 as i32 as u32,
                        (AccessSize::Half, false) => resp.data & 0xffff,
                        (AccessSize::Word, _) => resp.data,
                    };
                    self.state.write_reg(rd, value);
                    latency += resp.extra_latency;
                }
                Some(MemRequest::Store { addr, size, value }) => {
                    let resp = bus.core_access(addr, size, Some(value));
                    latency += resp.extra_latency;
                }
                None => {}
            }

            if let Some((op, a, b, rd)) = outcome.custom {
                let result = coproc.exec_custom(op, a, b, &mut self.state);
                if op.writes_rd() {
                    self.state.write_reg(rd, result);
                }
                out.custom = true;
            }

            if outcome.halt {
                self.halted = true;
                self.attribute(pc, 1);
                out.event = Some(CoreEvent::Halted);
                return out;
            }
            if outcome.is_wfi {
                self.wfi_wait = true;
                self.wfi_pc = pc;
                self.attribute(pc, 1);
                return out;
            }
            if outcome.is_mret {
                self.busy = latency.saturating_sub(1);
                self.counters.stall_mret += u64::from(self.busy);
                self.attribute(pc, 1 + u64::from(self.busy));
                if self.busy == 0 {
                    coproc.on_mret(&mut self.state);
                    out.event = Some(CoreEvent::MretRetired);
                } else {
                    self.completing = Completing::Mret;
                }
                return out;
            }

            // Superscalar pairing: one extra independent simple ALU
            // instruction may retire in the same cycle.
            if p.dual_issue && !paired && latency == 1 && Self::is_simple(&instr) {
                if let Some(next) = self.peek(self.state.pc) {
                    let raw_hazard = instr
                        .rd()
                        .is_some_and(|rd| next.sources().iter().flatten().any(|s| *s == rd));
                    if Self::is_simple(&next) && !raw_hazard {
                        paired = true;
                        self.counters.issued_pairs += 1;
                        continue;
                    }
                }
            }

            self.busy = latency.saturating_sub(1);
            // Issue-time stall attribution: the drain length is fully
            // decided here, so the batched path (which bulk-skips the
            // drain) ends up with identical counters. The profiler uses
            // the same trick: the full `1 + busy` cost lands on the
            // issuing PC now (on the *second* PC of a superscalar pair —
            // the first `continue`d without consuming the cycle).
            self.attribute(pc, 1 + u64::from(self.busy));
            let stall = u64::from(self.busy);
            if stall > 0 {
                match instr {
                    Instr::Load { .. } | Instr::Store { .. } => self.counters.stall_mem += stall,
                    Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. } => {
                        self.counters.stall_control += stall
                    }
                    _ => self.counters.stall_exec += stall,
                }
            }
            return out;
        }
    }

    /// Runs until the guest halts or `max_cycles` elapse, collecting
    /// events through `on_event`. Returns the number of cycles executed.
    pub fn run_with(
        &mut self,
        bus: &mut dyn DataBus,
        coproc: &mut dyn Coprocessor,
        max_cycles: u64,
        mut on_event: impl FnMut(u64, CoreEvent),
    ) -> u64 {
        let start = self.cycle;
        while !self.halted && self.cycle - start < max_cycles {
            let out = self.step(bus, coproc);
            if let Some(ev) = out.event {
                on_event(self.cycle, ev);
            }
        }
        self.cycle - start
    }

    /// Runs a quiescent batch of up to `max_cycles` cycles without a
    /// per-cycle call from the platform.
    ///
    /// The caller guarantees that, for the whole budget, nothing *outside*
    /// the core can change `state.csrs.mip` or wants per-cycle polling:
    /// no timer/software/external interrupt edge lands inside the window
    /// and the coprocessor is idle (guest-initiated changes are caught via
    /// [`DataBus::take_attention`] and the `custom` stop). Under that
    /// contract this is cycle-exact with calling [`step`](Self::step) in a
    /// loop, but burns through multi-cycle stalls and `wfi` stretches in
    /// bulk, advancing the bus clock via [`DataBus::advance_cycles`].
    ///
    /// Stops at the first of: an event matching `event_mask`, a custom
    /// (coprocessor) instruction executing, the bus raising attention, or
    /// the budget running out.
    pub fn run_until(
        &mut self,
        bus: &mut dyn DataBus,
        coproc: &mut dyn Coprocessor,
        event_mask: u32,
        max_cycles: u64,
    ) -> BatchExit {
        let start = self.cycle;
        loop {
            let used = self.cycle - start;
            if self.halted || used >= max_cycles {
                return BatchExit {
                    cycles: used,
                    event: None,
                    reason: StopReason::Budget,
                };
            }
            let remaining = max_cycles - used;

            // Bulk-drain a multi-cycle instruction. The cycle where `busy`
            // reaches zero may complete an `mret`, exactly as in `step`.
            if self.busy > 0 {
                let skip = u64::from(self.busy).min(remaining);
                bus.advance_cycles(skip);
                self.cycle += skip;
                self.busy -= skip as u32;
                self.state.csrs.mcycle = self.cycle as u32;
                if self.busy == 0 && self.completing == Completing::Mret {
                    self.completing = Completing::Plain;
                    coproc.on_mret(&mut self.state);
                    if event_mask & stop_events::MRET_RETIRED != 0 {
                        return BatchExit {
                            cycles: self.cycle - start,
                            event: Some(CoreEvent::MretRetired),
                            reason: StopReason::Event,
                        };
                    }
                }
                continue;
            }

            // `wfi` park: `mip` is constant for the whole batch, so with no
            // pending-and-enabled interrupt the core sleeps out the budget.
            if self.wfi_wait && self.state.csrs.mip & self.state.csrs.mie == 0 {
                bus.advance_cycles(remaining);
                self.cycle += remaining;
                self.counters.wfi_cycles += remaining;
                let pc = self.wfi_pc;
                self.attribute(pc, remaining);
                self.state.csrs.mcycle = self.cycle as u32;
                return BatchExit {
                    cycles: max_cycles,
                    event: None,
                    reason: StopReason::Budget,
                };
            }

            // Translated-block fast path: with the cache attached and the
            // core able to issue straight-line code (no drain, no park, no
            // takeable interrupt — `mip` is constant for the whole batch),
            // execute whole pre-decoded blocks per dispatch.
            if self.blocks.is_some()
                && !self.wfi_wait
                && !(self.state.csrs.mie_enabled() && self.state.csrs.pending_interrupt().is_some())
            {
                match self.try_blocks(bus, remaining) {
                    BlockOutcome::Ran { event, attention } => {
                        if let Some(ev) = event {
                            if event_bit(ev) & event_mask != 0 {
                                return BatchExit {
                                    cycles: self.cycle - start,
                                    event: Some(ev),
                                    reason: StopReason::Event,
                                };
                            }
                        }
                        if attention {
                            return BatchExit {
                                cycles: self.cycle - start,
                                event,
                                reason: StopReason::Attention,
                            };
                        }
                        continue;
                    }
                    BlockOutcome::NotEngaged => {}
                }
            }

            // One active cycle, identical to the per-cycle path.
            bus.advance_cycles(1);
            let out = self.step(bus, coproc);
            let attention = bus.take_attention();
            if let Some(ev) = out.event {
                if event_bit(ev) & event_mask != 0 {
                    return BatchExit {
                        cycles: self.cycle - start,
                        event: Some(ev),
                        reason: StopReason::Event,
                    };
                }
            }
            if out.custom {
                return BatchExit {
                    cycles: self.cycle - start,
                    event: out.event,
                    reason: StopReason::CustomExecuted,
                };
            }
            if attention {
                return BatchExit {
                    cycles: self.cycle - start,
                    event: out.event,
                    reason: StopReason::Attention,
                };
            }
        }
    }

    /// Runs a *unit-active* batch: the coprocessor has background work
    /// (context store/restore FSMs, speculative preload, a scheduler
    /// sort), so it must be stepped every cycle — but the interrupt lines
    /// are quiescent, so the platform's per-cycle mask bookkeeping is
    /// still provably a no-op. Executes in exactly the stepwise order
    /// (bus clock advances, core steps, coprocessor steps), dispatching
    /// translated blocks with the coprocessor co-stepped between
    /// micro-ops, and returns as soon as the coprocessor drains idle so
    /// the caller can re-enter the plain quiescent batch path.
    ///
    /// Same quiescence contract and stop conditions as
    /// [`run_until`](Self::run_until), with one extra rule: every
    /// consumed cycle *including the final one* has already taken its
    /// coprocessor step — the caller must not step it again.
    pub fn run_costep(
        &mut self,
        bus: &mut dyn DataBus,
        coproc: &mut dyn Coprocessor,
        event_mask: u32,
        max_cycles: u64,
    ) -> BatchExit {
        let start = self.cycle;
        loop {
            let used = self.cycle - start;
            if self.halted || used >= max_cycles || (used > 0 && coproc.is_idle()) {
                return BatchExit {
                    cycles: used,
                    event: None,
                    reason: StopReason::Budget,
                };
            }
            let remaining = max_cycles - used;

            // Translated-block fast path, with the coprocessor co-stepped
            // cycle by cycle inside the dispatch (same gate as
            // `run_until`).
            if self.blocks.is_some()
                && self.busy == 0
                && !self.wfi_wait
                && !(self.state.csrs.mie_enabled() && self.state.csrs.pending_interrupt().is_some())
            {
                match self.try_blocks_costep(bus, coproc, remaining) {
                    BlockOutcome::Ran { event, attention } => {
                        if let Some(ev) = event {
                            if event_bit(ev) & event_mask != 0 {
                                return BatchExit {
                                    cycles: self.cycle - start,
                                    event: Some(ev),
                                    reason: StopReason::Event,
                                };
                            }
                        }
                        if attention {
                            return BatchExit {
                                cycles: self.cycle - start,
                                event,
                                reason: StopReason::Attention,
                            };
                        }
                        continue;
                    }
                    BlockOutcome::NotEngaged => {}
                }
            }

            // Coprocessor-stall fast-forward: a custom instruction or
            // `mret` the coprocessor refuses pins the core at `pc`, and
            // the interpreter burns one stall cycle per full step call.
            // Replay those cycles in a tight loop — fetch count, stall
            // counter, attribution and the coprocessor's step per cycle,
            // exactly as `step` takes them — without the per-cycle gate
            // checks and block lookups. Quiescence plus "nothing retires
            // while stalled" keep every gate input constant, so checking
            // the gates once before the loop is exact. (The stall state
            // itself lives in the coprocessor and only moves in its
            // `step`, so it is re-checked every cycle.)
            if self.busy == 0
                && !self.wfi_wait
                && !(self.state.csrs.mie_enabled() && self.state.csrs.pending_interrupt().is_some())
            {
                let pc = self.state.pc;
                if pc & 3 == 0 && self.imem.contains(pc) {
                    let idx = ((pc - self.imem.base()) / 4) as usize;
                    // Only an already-decoded word qualifies (the first
                    // stall cycle goes through `step`, which fills and
                    // counts the decode exactly as stepwise does).
                    if let Some(Some(instr)) = self.decoded.get(idx).copied() {
                        loop {
                            let stalled = match instr {
                                Instr::Custom { op, .. } => coproc.custom_stall(op),
                                Instr::Mret => coproc.mret_stall(),
                                _ => false,
                            };
                            if !stalled || self.cycle - start >= max_cycles {
                                break;
                            }
                            bus.advance_cycles(1);
                            self.cycle += 1;
                            self.state.csrs.mcycle = self.cycle as u32;
                            let fetched = self.fetch(pc);
                            debug_assert_eq!(fetched, instr);
                            self.counters.stall_coproc += 1;
                            self.attribute(pc, 1);
                            coproc.step(&mut self.state, bus);
                        }
                        if self.cycle - start >= max_cycles {
                            continue;
                        }
                    }
                }
            }

            // One cycle, stepwise order: bus clock, core, coprocessor.
            bus.advance_cycles(1);
            let out = self.step(bus, coproc);
            coproc.step(&mut self.state, bus);
            let attention = bus.take_attention();
            if let Some(ev) = out.event {
                if event_bit(ev) & event_mask != 0 {
                    return BatchExit {
                        cycles: self.cycle - start,
                        event: Some(ev),
                        reason: StopReason::Event,
                    };
                }
            }
            // Unlike `run_until`, a custom instruction does not end the
            // batch: its only side effects live in the coprocessor and the
            // core (no MMIO, no interrupt-line change — the batch horizons
            // cannot move), and the coprocessor is already stepped every
            // cycle here, which is the very thing the plain batch path
            // must stop and hand back for. The idle check at the loop
            // head still ends the batch once the unit drains.
            if attention {
                return BatchExit {
                    cycles: self.cycle - start,
                    event: out.event,
                    reason: StopReason::Attention,
                };
            }
        }
    }

    /// Disassembles the instruction at `pc` (debug aid).
    pub fn disassemble_at(&mut self, pc: u32) -> Option<String> {
        self.peek(pc).map(|i| disassemble(&i, pc))
    }

    /// Serializes the complete engine state for a machine-state
    /// snapshot: architectural state, instruction memory, pipeline
    /// timing state (`busy`/`completing`/`wfi`), cycle and retire
    /// counts, the branch predictor, the retire-trace ring, activity
    /// counters, and the optional profiler and block cache.
    ///
    /// The per-word decode cache and the block translations are
    /// recorded as *layout* (which slots are filled), not contents:
    /// both are deterministic functions of the instruction memory, and
    /// [`restore_snap`](Self::restore_snap) rebuilds them bit-exactly
    /// through non-counting paths.
    pub fn to_snap(&self) -> Json {
        let mut bitmap = vec![0u32; self.decoded.len().div_ceil(32)];
        for (i, d) in self.decoded.iter().enumerate() {
            if d.is_some() {
                bitmap[i / 32] |= 1 << (i % 32);
            }
        }
        let predictor: Vec<u32> = self.predictor.iter().map(|&v| u32::from(v)).collect();
        let cycles: Vec<u64> = self.trace.buf.iter().map(|&(c, _)| c).collect();
        let pcs: Vec<u32> = self.trace.buf.iter().map(|&(_, p)| p).collect();
        let trace = Json::object()
            .with("depth", self.trace.buf.len())
            .with("head", self.trace.head)
            .with("len", self.trace.len)
            .with("cycles", snap::longs_to_json(&cycles))
            .with("pcs", snap::words_to_json(&pcs));
        Json::object()
            .with("core", self.params.name)
            .with("state", self.state.to_snap())
            .with("imem", self.imem.to_snap())
            .with("decoded", snap::words_to_json(&bitmap))
            .with("busy", self.busy)
            .with(
                "completing",
                match self.completing {
                    Completing::Plain => "plain",
                    Completing::Mret => "mret",
                },
            )
            .with("wfi_wait", self.wfi_wait)
            .with("wfi_pc", self.wfi_pc)
            .with("halted", self.halted)
            .with("cycle", self.cycle)
            .with("retired", self.retired)
            .with("predictor", snap::words_to_json(&predictor))
            .with("trace", trace)
            .with("counters", self.counters.to_snap())
            .with(
                "profile",
                self.profiler.as_ref().map_or(Json::Null, |p| p.to_snap()),
            )
            .with(
                "blocks",
                self.blocks.as_ref().map_or(Json::Null, |c| c.to_snap()),
            )
    }

    /// Restores the engine from [`to_snap`](Self::to_snap) output, in
    /// place. The engine must have been constructed for the same core
    /// model and instruction-memory geometry; everything else —
    /// including whether the profiler or block cache is attached — is
    /// taken from the snapshot.
    ///
    /// Decode entries and block translations are rebuilt from the
    /// restored instruction memory through non-counting paths, and the
    /// activity counters are overwritten last, so a restored engine is
    /// cycle-for-cycle and counter-for-counter identical to one that
    /// never stopped. Every field is parsed before any is committed: on
    /// error the engine is unchanged.
    ///
    /// # Errors
    ///
    /// Fails on malformed fields, a core-model or IMEM-geometry
    /// mismatch, or a cached layout that no longer rebuilds from the
    /// snapshotted instruction memory.
    pub fn restore_snap(&mut self, value: &Json) -> Result<(), SnapError> {
        let name = snap::get_str(value, "core")?;
        if name != self.params.name {
            return Err(SnapError::new(format!(
                "engine: snapshot of core `{name}` cannot restore a `{}` engine",
                self.params.name
            )));
        }
        let imem = Mem::from_snap(snap::field(value, "imem")?)?;
        if imem.base() != self.imem.base() || imem.end() != self.imem.end() {
            return Err(SnapError::new(format!(
                "engine: imem geometry {:#010x}..{:#010x} does not match snapshot {:#010x}..{:#010x}",
                self.imem.base(),
                self.imem.end(),
                imem.base(),
                imem.end()
            )));
        }
        let state = ArchState::from_snap(snap::field(value, "state")?)?;
        let bitmap = snap::words_from_json(
            snap::field(value, "decoded")?,
            self.decoded.len().div_ceil(32),
        )?;
        let mut decoded: Vec<Option<Instr>> = vec![None; self.decoded.len()];
        for (idx, slot) in decoded.iter_mut().enumerate() {
            if bitmap[idx / 32] & (1 << (idx % 32)) != 0 {
                let addr = imem.base() + 4 * idx as u32;
                let instr = decode(imem.read_word(addr)).map_err(|e| {
                    SnapError::new(format!("engine: decode slot {idx} ({addr:#010x}): {e}"))
                })?;
                *slot = Some(instr);
            }
        }
        let busy = snap::get_u32(value, "busy")?;
        let completing = match snap::get_str(value, "completing")? {
            "plain" => Completing::Plain,
            "mret" => Completing::Mret,
            other => {
                return Err(SnapError::new(format!(
                    "engine: unknown completing state `{other}`"
                )))
            }
        };
        let wfi_wait = snap::get_bool(value, "wfi_wait")?;
        let wfi_pc = snap::get_u32(value, "wfi_pc")?;
        let halted = snap::get_bool(value, "halted")?;
        let cycle = snap::get_u64(value, "cycle")?;
        let retired = snap::get_u64(value, "retired")?;
        let predictor_words =
            snap::words_from_json(snap::field(value, "predictor")?, self.predictor.len())?;
        let mut predictor = Vec::with_capacity(predictor_words.len());
        for w in predictor_words {
            if w > 3 {
                return Err(SnapError::new(format!(
                    "engine: predictor counter {w} out of range"
                )));
            }
            predictor.push(w as u8);
        }
        let trace_v = snap::field(value, "trace")?;
        let depth = snap::get_usize(trace_v, "depth")?;
        let head = snap::get_usize(trace_v, "head")?;
        let len = snap::get_usize(trace_v, "len")?;
        if depth == 0 || head >= depth || len > depth {
            return Err(SnapError::new(format!(
                "engine: retire ring head {head}/len {len} out of range for depth {depth}"
            )));
        }
        let cycles = snap::longs_from_json(snap::field(trace_v, "cycles")?, depth)?;
        let pcs = snap::words_from_json(snap::field(trace_v, "pcs")?, depth)?;
        let trace = RetireRing {
            buf: cycles
                .iter()
                .zip(&pcs)
                .map(|(&c, &p)| (c, p))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            head,
            len,
        };
        let profiler = match snap::field(value, "profile")? {
            Json::Null => None,
            v => Some(Box::new(PcProfile::from_snap(v)?)),
        };
        let blocks = match snap::field(value, "blocks")? {
            Json::Null => None,
            v => Some(Box::new(BlockCache::from_snap(v, &self.params, &imem)?)),
        };
        let counters = CoreCounters::from_snap(snap::field(value, "counters")?)?;
        self.state = state;
        self.imem = imem;
        self.decoded = decoded;
        self.busy = busy;
        self.completing = completing;
        self.wfi_wait = wfi_wait;
        self.wfi_pc = wfi_pc;
        self.halted = halted;
        self.cycle = cycle;
        self.retired = retired;
        self.predictor = predictor;
        self.trace = trace;
        self.profiler = profiler;
        self.blocks = blocks;
        self.counters = counters;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coproc::NullCoprocessor;
    use rvsim_isa::{Asm, Reg};

    /// A trivial single-cycle SRAM bus for engine unit tests.
    struct SramBus {
        mem: Mem,
    }

    impl DataBus for SramBus {
        fn core_access(&mut self, addr: u32, size: AccessSize, write: Option<u32>) -> BusResponse {
            match write {
                Some(v) => {
                    self.mem.write(addr, size, v);
                    BusResponse {
                        data: 0,
                        extra_latency: 0,
                    }
                }
                None => BusResponse {
                    data: self.mem.read(addr, size),
                    extra_latency: 1,
                },
            }
        }

        fn unit_access(&mut self, _addr: u32, _write: Option<u32>) -> Option<u32> {
            None
        }
    }

    fn run_to_halt(asm: Asm) -> (CoreEngine, SramBus) {
        let prog = asm.finish().expect("assembly");
        let mut engine = CoreEngine::new(TimingParams::cv32e40p(), 0x0, 0x1_0000);
        engine.load_program(&prog);
        let mut bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x1_0000),
        };
        let mut co = NullCoprocessor;
        engine.run_with(&mut bus, &mut co, 1_000_000, |_, _| {});
        assert!(engine.halted(), "program did not halt");
        (engine, bus)
    }

    #[test]
    fn computes_a_sum_loop() {
        // sum 1..=10 into a0
        let mut a = Asm::new(0);
        a.li(Reg::A0, 0);
        a.li(Reg::T0, 1);
        a.li(Reg::T1, 11);
        a.label("loop");
        a.add(Reg::A0, Reg::A0, Reg::T0);
        a.addi(Reg::T0, Reg::T0, 1);
        a.bne(Reg::T0, Reg::T1, "loop");
        a.ebreak();
        let (engine, _) = run_to_halt(a);
        assert_eq!(engine.state.read_reg(Reg::A0), 55);
    }

    #[test]
    fn memory_roundtrip_through_bus() {
        let mut a = Asm::new(0);
        a.li(Reg::T0, 0x2000_0040u32 as i32);
        a.li(Reg::T1, 0x1234);
        a.sw(Reg::T1, 0, Reg::T0);
        a.lw(Reg::A0, 0, Reg::T0);
        a.lb(Reg::A1, 0, Reg::T0); // 0x34
        a.ebreak();
        let (engine, bus) = run_to_halt(a);
        assert_eq!(engine.state.read_reg(Reg::A0), 0x1234);
        assert_eq!(engine.state.read_reg(Reg::A1), 0x34);
        assert_eq!(bus.mem.read_word(0x2000_0040), 0x1234);
    }

    #[test]
    fn taken_branches_cost_more_on_cv32() {
        // Loop with a taken branch each iteration vs straight-line adds.
        let mut a = Asm::new(0);
        a.li(Reg::T0, 100);
        a.label("l");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "l");
        a.ebreak();
        let (engine, _) = run_to_halt(a);
        // 100 iterations × (1 + (1+2)) plus setup/halt: ≈ 400.
        let c = engine.cycle();
        assert!((380..=430).contains(&c), "unexpected cycle count {c}");
    }

    #[test]
    fn division_takes_div_latency() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 1000);
        a.li(Reg::A1, 7);
        a.div(Reg::A2, Reg::A0, Reg::A1);
        a.ebreak();
        let (engine, _) = run_to_halt(a);
        assert_eq!(engine.state.read_reg(Reg::A2), 142);
        assert!(engine.cycle() >= 34);
    }

    #[test]
    fn dual_issue_pairs_independent_alu_ops() {
        let mut prog = Asm::new(0);
        for _ in 0..50 {
            prog.addi(Reg::T0, Reg::T0, 1);
            prog.addi(Reg::T1, Reg::T1, 1); // independent of t0
        }
        prog.ebreak();
        let p = prog.finish().unwrap();

        let run = |params: TimingParams| {
            let mut e = CoreEngine::new(params, 0, 0x1_0000);
            e.load_program(&p);
            let mut bus = SramBus {
                mem: Mem::new(0x2000_0000, 0x100),
            };
            let mut co = NullCoprocessor;
            e.run_with(&mut bus, &mut co, 10_000, |_, _| {});
            e.cycle()
        };
        let scalar = run(TimingParams::cv32e40p());
        let superscalar = run(TimingParams::naxriscv());
        assert!(
            superscalar * 2 <= scalar + 10,
            "dual issue not effective: {superscalar} vs {scalar}"
        );
    }

    #[test]
    fn dependent_ops_do_not_pair() {
        let mut prog = Asm::new(0);
        for _ in 0..100 {
            prog.addi(Reg::T0, Reg::T0, 1); // serial dependency chain
        }
        prog.ebreak();
        let p = prog.finish().unwrap();
        let mut e = CoreEngine::new(TimingParams::naxriscv(), 0, 0x1_0000);
        e.load_program(&p);
        let mut bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x100),
        };
        let mut co = NullCoprocessor;
        e.run_with(&mut bus, &mut co, 10_000, |_, _| {});
        assert!(
            e.cycle() >= 100,
            "RAW pair incorrectly dual-issued: {}",
            e.cycle()
        );
    }

    #[test]
    fn wfi_parks_until_interrupt() {
        let mut a = Asm::new(0);
        a.li(Reg::T0, rvsim_isa::csr::MIP_MTIP as i32);
        a.csrw(rvsim_isa::csr::MIE, Reg::T0);
        a.wfi();
        a.ebreak();
        let p = a.finish().unwrap();
        let mut e = CoreEngine::new(TimingParams::cv32e40p(), 0, 0x1_0000);
        e.load_program(&p);
        let mut bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x100),
        };
        let mut co = NullCoprocessor;
        for _ in 0..100 {
            e.step(&mut bus, &mut co);
        }
        assert!(e.waiting_for_interrupt());
        assert!(!e.halted());
        // Raise the timer interrupt: core must wake and halt. MIE is off,
        // so no trap is taken — execution falls through to ebreak.
        e.state.csrs.mip = rvsim_isa::csr::MIP_MTIP;
        for _ in 0..10 {
            e.step(&mut bus, &mut co);
        }
        assert!(e.halted());
    }

    #[test]
    fn stale_decode_cannot_survive_imem_rewrite() {
        // addi a0, a0, 1 ; ebreak — execute once so the decode caches.
        let mut a = Asm::new(0);
        a.addi(Reg::A0, Reg::A0, 1);
        a.ebreak();
        let p = a.finish().unwrap();
        let mut e = CoreEngine::new(TimingParams::cv32e40p(), 0, 0x1_0000);
        e.load_program(&p);
        let mut bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x100),
        };
        let mut co = NullCoprocessor;
        e.run_with(&mut bus, &mut co, 100, |_, _| {});
        assert!(e.halted());
        assert_eq!(e.state.read_reg(Reg::A0), 1);

        // Rewrite word 0 to `addi a0, a0, 7` and rerun from pc 0. Without
        // invalidation the stale cached decode (`addi a0, a0, 1`) would
        // execute instead of the new bytes.
        let mut b = Asm::new(0);
        b.addi(Reg::A0, Reg::A0, 7);
        let new_word = b.finish().unwrap().words[0];
        e.write_imem_word(0, new_word);
        e.halted = false;
        e.state.pc = 0;
        e.state.write_reg(Reg::A0, 0);
        e.run_with(&mut bus, &mut co, 100, |_, _| {});
        assert!(e.halted());
        assert_eq!(
            e.state.read_reg(Reg::A0),
            7,
            "stale decoded Instr survived IMEM rewrite"
        );
    }

    #[test]
    fn invalidate_decoded_ignores_foreign_addresses() {
        let mut e = CoreEngine::new(TimingParams::cv32e40p(), 0x1000, 0x100);
        // Outside IMEM: must be a no-op, not a panic or bogus index.
        e.invalidate_decoded(0x2000_0000);
        e.invalidate_decoded(0);
    }

    #[test]
    fn run_until_matches_per_cycle_stepping() {
        use rvsim_isa::csr;
        // A program with branches, loads/stores, a div stall and a final
        // wfi park — enough variety to exercise every batching path.
        let build = || {
            let mut a = Asm::new(0);
            a.li(Reg::T0, 0x2000_0000u32 as i32);
            a.li(Reg::T1, 40);
            a.label("loop");
            a.sw(Reg::T1, 0, Reg::T0);
            a.lw(Reg::T2, 0, Reg::T0);
            a.div(Reg::T2, Reg::T2, Reg::T1);
            a.addi(Reg::T1, Reg::T1, -1);
            a.bnez(Reg::T1, "loop");
            a.li(Reg::T0, csr::MIP_MTIP as i32);
            a.csrw(csr::MIE, Reg::T0);
            a.wfi();
            a.ebreak();
            a.finish().unwrap()
        };
        let p = build();

        let mut slow = CoreEngine::new(TimingParams::cv32e40p(), 0, 0x1_0000);
        slow.load_program(&p);
        slow.set_profiling(true);
        let mut slow_bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x100),
        };
        let mut co = NullCoprocessor;
        let slow_cycles = slow.run_with(&mut slow_bus, &mut co, 5_000, |_, _| {});

        let mut fast = CoreEngine::new(TimingParams::cv32e40p(), 0, 0x1_0000);
        fast.load_program(&p);
        fast.set_profiling(true);
        let mut fast_bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x100),
        };
        let exit = fast.run_until(&mut fast_bus, &mut co, stop_events::ALL, 5_000);

        // Both park in wfi with identical architectural outcomes: the
        // batched run consumes the full budget (wfi bulk-skip) just like
        // 5 000 per-cycle steps do.
        assert_eq!(exit.reason, StopReason::Budget);
        assert_eq!(exit.cycles, slow_cycles);
        assert_eq!(fast.cycle(), slow.cycle());
        assert_eq!(fast.retired(), slow.retired());
        assert_eq!(fast.state.pc, slow.state.pc);
        assert!(fast.waiting_for_interrupt() && slow.waiting_for_interrupt());
        for r in [Reg::T0, Reg::T1, Reg::T2] {
            assert_eq!(fast.state.read_reg(r), slow.state.read_reg(r));
        }
        // Issue-time attribution makes the activity counters path-exact.
        assert_eq!(fast.counters(), slow.counters());
        assert!(slow.counters().stall_exec > 0, "div stalls recorded");
        assert!(slow.counters().stall_mem > 0, "load stalls recorded");
        assert!(slow.counters().wfi_cycles > 0, "wfi park recorded");
        assert!(slow.counters().decode_hits > slow.counters().decode_misses);
        // The PC profiler uses the same issue-time attribution, so the
        // batched and per-cycle profiles are bit-identical and account
        // for every consumed cycle (the run ends parked in wfi, not
        // mid-drain, so attribution equals consumption exactly).
        let fast_profile = fast.take_profile().expect("profiling was on");
        let slow_profile = slow.take_profile().expect("profiling was on");
        assert_eq!(fast_profile, slow_profile, "profiles diverged");
        assert_eq!(slow_profile.total_cycles(), slow_cycles);
        assert_eq!(slow_profile.other, 0);
        // The park cycles land on the `wfi` PC; inside the loop body the
        // div stall dominates.
        let mut ranked: Vec<(u32, u64)> = slow_profile.nonzero().collect();
        ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let mut name_of = |pc: u32| {
            slow.disassemble_at(pc)
                .map(|d| d.split_whitespace().next().unwrap_or("").to_string())
        };
        assert_eq!(name_of(ranked[0].0).as_deref(), Some("wfi"), "park cycles");
        assert_eq!(name_of(ranked[1].0).as_deref(), Some("div"), "div stall");
    }

    /// A program with every block-relevant shape: fusible `lui+addi` and
    /// `auipc+jalr`, a fusible compare+branch, pairable ALU ops, loads,
    /// stores, a div stall, a `fence`, calls and returns.
    fn block_torture_program() -> rvsim_isa::Program {
        let mut a = Asm::new(0);
        a.j("main");
        a.label("leaf");
        a.add(Reg::S1, Reg::S1, Reg::S0);
        a.addi(Reg::S0, Reg::S0, 3);
        a.slti(Reg::A2, Reg::S0, 100);
        a.bnez(Reg::A2, "skip"); // fusible cmp+branch
        a.addi(Reg::A3, Reg::A3, 1);
        a.label("skip");
        a.ret();
        a.label("main");
        a.li(Reg::T0, 0x2000_0000u32 as i32);
        a.li(Reg::S0, 0x1234_5678); // fusible lui+addi
        a.li(Reg::T1, 30);
        a.label("loop");
        a.sw(Reg::T1, 0, Reg::T0);
        a.lw(Reg::T2, 0, Reg::T0);
        a.div(Reg::T2, Reg::T2, Reg::T1);
        a.call("leaf");
        let ap = a.here();
        a.auipc(Reg::T3, 0); // fusible auipc+jalr back to `leaf` (pc 4)
        a.jalr(Reg::Ra, Reg::T3, 4 - ap as i32);
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, "loop");
        a.emit(Instr::Fence);
        a.li(Reg::A0, 77);
        a.ebreak();
        a.finish().unwrap()
    }

    /// Runs the torture program to halt, per-cycle or batched with the
    /// block cache attached.
    fn run_torture(params: TimingParams, blocks: bool) -> CoreEngine {
        let p = block_torture_program();
        let mut e = CoreEngine::new(params, 0, 0x1_0000);
        e.load_program(&p);
        e.set_profiling(true);
        e.set_block_cache(blocks);
        let mut bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x100),
        };
        let mut co = NullCoprocessor;
        if blocks {
            while !e.halted() {
                let exit = e.run_until(&mut bus, &mut co, stop_events::ALL, 1_000);
                if exit.cycles == 0 && exit.reason == StopReason::Budget {
                    break;
                }
            }
        } else {
            e.run_with(&mut bus, &mut co, 1_000_000, |_, _| {});
        }
        assert!(e.halted(), "torture program did not halt");
        e
    }

    #[test]
    fn block_cache_matches_per_cycle_stepping() {
        for params in [TimingParams::cv32e40p(), TimingParams::naxriscv()] {
            let mut slow = run_torture(params, false);
            let mut fast = run_torture(params, true);
            assert_eq!(fast.cycle(), slow.cycle(), "{}: cycles", params.name);
            assert_eq!(fast.retired(), slow.retired(), "{}: retired", params.name);
            assert_eq!(fast.state.pc, slow.state.pc);
            for r in [
                Reg::T0,
                Reg::T1,
                Reg::T2,
                Reg::T3,
                Reg::S0,
                Reg::S1,
                Reg::A0,
                Reg::A2,
                Reg::A3,
                Reg::Ra,
            ] {
                assert_eq!(
                    fast.state.read_reg(r),
                    slow.state.read_reg(r),
                    "{}: reg {r:?}",
                    params.name
                );
            }
            assert_eq!(fast.state.read_reg(Reg::A0), 77);
            // Architectural counters (decode cache, pairing, stalls) are
            // bit-identical; only the block bookkeeping trio differs.
            assert_eq!(
                fast.counters().without_block_stats(),
                slow.counters(),
                "{}: counters",
                params.name
            );
            let fc = fast.counters();
            assert!(fc.block_hits > 0, "{}: blocks never engaged", params.name);
            assert!(fc.block_builds > 0, "{}: no translations", params.name);
            assert!(fc.fused_ops > 0, "{}: no macro-op fusion", params.name);
            assert_eq!(slow.counters().fused_ops, 0);
            if params.dual_issue {
                assert!(fc.issued_pairs > 0, "superscalar model never paired");
            }
            // The retired-instruction trace and the PC profile replay
            // identically through the block path.
            let ft: Vec<_> = fast.recent_pcs().collect();
            let st: Vec<_> = slow.recent_pcs().collect();
            assert_eq!(ft, st, "{}: trace", params.name);
            assert_eq!(
                fast.take_profile().unwrap(),
                slow.take_profile().unwrap(),
                "{}: profile",
                params.name
            );
        }
    }

    /// Mid-run snapshot/restore is invisible: a restored engine finishes
    /// the torture program cycle-for-cycle, counter-for-counter and
    /// trace-for-trace identical to one that never stopped — per core
    /// model, with and without the block cache, profiler attached.
    #[test]
    fn snapshot_roundtrip_is_invisible_mid_run() {
        for params in [TimingParams::cv32e40p(), TimingParams::naxriscv()] {
            for blocks in [false, true] {
                let p = block_torture_program();
                let mut a = CoreEngine::new(params, 0, 0x1_0000);
                a.load_program(&p);
                a.set_profiling(true);
                a.set_block_cache(blocks);
                let mut a_bus = SramBus {
                    mem: Mem::new(0x2000_0000, 0x100),
                };
                let mut co = NullCoprocessor;
                // Part-way through the run: mid-loop, caches warm.
                while a.cycle() < 700 && !a.halted() {
                    a.run_until(&mut a_bus, &mut co, stop_events::ALL, 700 - a.cycle());
                }
                let doc = a.to_snap();
                let bus_doc = a_bus.mem.to_snap();
                // Snapshotting twice yields byte-identical documents.
                assert_eq!(
                    doc.render(),
                    a.to_snap().render(),
                    "{}: unstable",
                    params.name
                );

                let mut b = CoreEngine::new(params, 0, 0x1_0000);
                b.restore_snap(&doc).expect("restore");
                let mut b_bus = SramBus {
                    mem: Mem::from_snap(&bus_doc).expect("bus restore"),
                };
                assert_eq!(b.cycle(), a.cycle());
                assert_eq!(b.block_cache_enabled(), blocks);

                let mut finish = |e: &mut CoreEngine, bus: &mut SramBus| {
                    while !e.halted() {
                        let exit = e.run_until(bus, &mut co, stop_events::ALL, 1_000);
                        if exit.cycles == 0 && exit.reason == StopReason::Budget {
                            break;
                        }
                    }
                };
                finish(&mut a, &mut a_bus);
                finish(&mut b, &mut b_bus);
                assert!(a.halted() && b.halted(), "{}: did not halt", params.name);
                assert_eq!(b.cycle(), a.cycle(), "{}: cycles", params.name);
                assert_eq!(b.retired(), a.retired(), "{}: retired", params.name);
                assert_eq!(b.state.pc, a.state.pc, "{}: pc", params.name);
                for n in 0..32 {
                    let r = Reg::from_number(n);
                    assert_eq!(
                        b.state.read_reg(r),
                        a.state.read_reg(r),
                        "{}: x{n}",
                        params.name
                    );
                }
                assert_eq!(b.state.csrs, a.state.csrs, "{}: csrs", params.name);
                assert_eq!(b.counters(), a.counters(), "{}: counters", params.name);
                let at: Vec<_> = a.recent_pcs().collect();
                let bt: Vec<_> = b.recent_pcs().collect();
                assert_eq!(bt, at, "{}: trace", params.name);
                assert_eq!(
                    b.take_profile().unwrap(),
                    a.take_profile().unwrap(),
                    "{}: profile",
                    params.name
                );
                // The final engine states serialize identically too.
                assert_eq!(a.to_snap().render(), b.to_snap().render());
                assert_eq!(a_bus.mem.to_snap().render(), b_bus.mem.to_snap().render());
            }
        }
    }

    /// A restore with the wrong core model or mangled fields must fail
    /// without touching the engine.
    #[test]
    fn snapshot_restore_rejects_mismatches() {
        let p = block_torture_program();
        let mut e = CoreEngine::new(TimingParams::cv32e40p(), 0, 0x1_0000);
        e.load_program(&p);
        let doc = e.to_snap();
        let mut other = CoreEngine::new(TimingParams::naxriscv(), 0, 0x1_0000);
        assert!(other.restore_snap(&doc).is_err(), "wrong core accepted");
        let mut small = CoreEngine::new(TimingParams::cv32e40p(), 0, 0x8000);
        assert!(small.restore_snap(&doc).is_err(), "wrong imem accepted");
        let mut mangled = doc.clone();
        if let Json::Object(pairs) = &mut mangled {
            for (k, v) in pairs.iter_mut() {
                if k == "completing" {
                    *v = Json::from("warp");
                }
            }
        }
        assert!(e.restore_snap(&mangled).is_err(), "bad field accepted");
        // The failed restores left the engine usable.
        assert_eq!(e.cycle(), 0);
    }

    #[test]
    fn stale_block_cannot_survive_imem_rewrite() {
        let mut a = Asm::new(0);
        a.addi(Reg::A0, Reg::A0, 1);
        a.ebreak();
        let p = a.finish().unwrap();
        let mut e = CoreEngine::new(TimingParams::cv32e40p(), 0, 0x1_0000);
        e.load_program(&p);
        e.set_block_cache(true);
        let mut bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x100),
        };
        let mut co = NullCoprocessor;
        e.run_until(&mut bus, &mut co, stop_events::ALL, 1_000);
        assert!(e.halted());
        assert_eq!(e.state.read_reg(Reg::A0), 1);
        assert!(e.counters().block_hits > 0, "block path never engaged");

        // Rewrite word 0 to `addi a0, a0, 7` and rerun from pc 0: the
        // live block covering word 0 must die with the cached decode.
        let mut b = Asm::new(0);
        b.addi(Reg::A0, Reg::A0, 7);
        let new_word = b.finish().unwrap().words[0];
        e.write_imem_word(0, new_word);
        e.halted = false;
        e.state.pc = 0;
        e.state.write_reg(Reg::A0, 0);
        e.run_until(&mut bus, &mut co, stop_events::ALL, 1_000);
        assert!(e.halted());
        assert_eq!(
            e.state.read_reg(Reg::A0),
            7,
            "stale block translation survived IMEM rewrite"
        );
        // Both generations count as builds at entry pc 0 — the profiler's
        // retranslation column feeds off this.
        let stats = e.block_stats_in(0, 0);
        assert_eq!(stats.builds, 2, "rewrite must force a retranslation");
        assert_eq!(stats.execs, 2);
    }

    #[test]
    fn decode_cache_is_shared_between_block_and_interpreter_paths() {
        // Run the torture program (a) pure interpreter and (b) 300 cycles
        // interpreted, then batched with blocks: identical decode-cache
        // counters prove both paths probe one shared per-word cache
        // rather than the block cache shadowing it.
        let p = block_torture_program();
        let slow = {
            let mut e = CoreEngine::new(TimingParams::naxriscv(), 0, 0x1_0000);
            e.load_program(&p);
            let mut bus = SramBus {
                mem: Mem::new(0x2000_0000, 0x100),
            };
            let mut co = NullCoprocessor;
            e.run_with(&mut bus, &mut co, 1_000_000, |_, _| {});
            assert!(e.halted());
            e
        };
        let mut e = CoreEngine::new(TimingParams::naxriscv(), 0, 0x1_0000);
        e.load_program(&p);
        e.set_block_cache(true);
        let mut bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x100),
        };
        let mut co = NullCoprocessor;
        for _ in 0..300 {
            e.step(&mut bus, &mut co);
        }
        while !e.halted() {
            e.run_until(&mut bus, &mut co, stop_events::ALL, 1_000);
        }
        assert_eq!(e.cycle(), slow.cycle());
        assert_eq!(e.retired(), slow.retired());
        assert_eq!(e.counters().without_block_stats(), slow.counters());
        assert!(e.counters().decode_hits > 0);
        assert!(e.counters().block_hits > 0);
    }

    #[test]
    fn profiling_never_changes_timing_or_state() {
        // The same program as the batching test, run with and without the
        // profiler: cycles, retirement, PC and registers must match
        // exactly (the profiler only counts).
        let mut a = Asm::new(0);
        a.li(Reg::T0, 0x2000_0000u32 as i32);
        a.li(Reg::T1, 25);
        a.label("loop");
        a.sw(Reg::T1, 0, Reg::T0);
        a.lw(Reg::T2, 0, Reg::T0);
        a.div(Reg::T2, Reg::T2, Reg::T1);
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, "loop");
        a.ebreak();
        let p = a.finish().unwrap();
        let run = |profiled: bool| {
            let mut e = CoreEngine::new(TimingParams::naxriscv(), 0, 0x1_0000);
            e.load_program(&p);
            e.set_profiling(profiled);
            let mut bus = SramBus {
                mem: Mem::new(0x2000_0000, 0x100),
            };
            let mut co = NullCoprocessor;
            e.run_with(&mut bus, &mut co, 50_000, |_, _| {});
            assert!(e.halted());
            e
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.cycle(), on.cycle(), "profiling changed the cycle count");
        assert_eq!(off.retired(), on.retired());
        assert_eq!(off.state.pc, on.state.pc);
        assert_eq!(off.counters(), on.counters());
        assert!(off.profile().is_none());
        assert_eq!(on.profile().expect("on").total_cycles(), on.cycle());
    }

    #[test]
    fn run_until_stops_on_masked_events_only() {
        use rvsim_isa::csr;
        let mut a = Asm::new(0);
        a.la(Reg::T0, "handler");
        a.csrw(csr::MTVEC, Reg::T0);
        a.li(Reg::T0, csr::MIP_MTIP as i32);
        a.csrw(csr::MIE, Reg::T0);
        a.enable_interrupts();
        a.label("spin");
        a.j("spin");
        a.label("handler");
        a.ebreak();
        let p = a.finish().unwrap();
        let mut e = CoreEngine::new(TimingParams::cv32e40p(), 0, 0x1_0000);
        e.load_program(&p);
        let mut bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x100),
        };
        let mut co = NullCoprocessor;
        // No interrupt pending: spins to the budget.
        let exit = e.run_until(&mut bus, &mut co, stop_events::ALL, 200);
        assert_eq!(exit.reason, StopReason::Budget);
        assert_eq!(exit.cycles, 200);
        // Raise MTIP: next batch must stop at the entry event, then run to
        // the halt inside the handler.
        e.state.csrs.mip = csr::MIP_MTIP;
        let exit = e.run_until(&mut bus, &mut co, stop_events::ALL, 200);
        assert_eq!(exit.reason, StopReason::Event);
        assert_eq!(
            exit.event,
            Some(CoreEvent::InterruptEntered {
                cause: csr::CAUSE_TIMER
            })
        );
        let exit = e.run_until(&mut bus, &mut co, stop_events::ALL, 200);
        assert_eq!(exit.reason, StopReason::Event);
        assert_eq!(exit.event, Some(CoreEvent::Halted));
        assert!(e.halted());
    }

    #[test]
    fn interrupt_entry_and_mret_roundtrip() {
        use rvsim_isa::csr;
        let mut a = Asm::new(0);
        // Set mtvec to the handler, enable timer irq, enable MIE, spin.
        a.la(Reg::T0, "handler");
        a.csrw(csr::MTVEC, Reg::T0);
        a.li(Reg::T0, csr::MIP_MTIP as i32);
        a.csrw(csr::MIE, Reg::T0);
        a.enable_interrupts();
        a.label("spin");
        a.addi(Reg::A0, Reg::A0, 1);
        a.j("spin");
        a.label("handler");
        a.li(Reg::A1, 99);
        a.ebreak();
        let p = a.finish().unwrap();
        let mut e = CoreEngine::new(TimingParams::cv32e40p(), 0, 0x1_0000);
        e.load_program(&p);
        let mut bus = SramBus {
            mem: Mem::new(0x2000_0000, 0x100),
        };
        let mut co = NullCoprocessor;
        let mut entered = None;
        for _ in 0..50 {
            e.step(&mut bus, &mut co);
        }
        e.state.csrs.mip = csr::MIP_MTIP;
        for _ in 0..50 {
            e.state.csrs.mip = csr::MIP_MTIP;
            let out = e.step(&mut bus, &mut co);
            if let Some(CoreEvent::InterruptEntered { cause }) = out.event {
                entered = Some(cause);
            }
            if e.halted() {
                break;
            }
        }
        assert_eq!(entered, Some(csr::CAUSE_TIMER));
        assert_eq!(e.state.read_reg(Reg::A1), 99);
        assert_eq!(e.state.csrs.mcause, csr::CAUSE_TIMER);
        assert!(
            !e.state.csrs.mie_enabled(),
            "MIE must be cleared in the ISR"
        );
    }
}
