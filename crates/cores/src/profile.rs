//! Cycle-attributed guest PC profiling.
//!
//! When enabled on a [`CoreEngine`](crate::engine::CoreEngine), every
//! simulated cycle is attributed to one guest PC *at issue time* — the
//! same trick the activity counters use — so a profile is bit-identical
//! whether the engine ran per-cycle or through batched `run_until`, and
//! enabling it never changes timing (the profiler only counts).
//!
//! Attribution rules (mirroring the engine's cycle consumption):
//!
//! * an issued instruction gets its full latency (`1 + busy` drain),
//!   charged to the issuing PC the moment the drain length is decided;
//! * a superscalar pair charges the shared cycle (plus drain) to the
//!   *second* PC of the pair;
//! * interrupt/exception entry charges the flush (`1 + busy`) to the trap
//!   *target* PC — handler prologues show their true entry cost;
//! * `wfi` park cycles are charged to the `wfi` instruction's PC
//!   (per-cycle and bulk paths agree by construction);
//! * a coprocessor-stalled issue charges each stall cycle to the stalled
//!   PC.
//!
//! [`PcProfile::hot_blocks`] folds the per-PC bins into straight-line
//! basic-block ranges (split at control transfers and their targets) and
//! ranks them — the seed list for a future translation cache (ROADMAP
//! item 1). [`PcProfile::folded`] emits `flamegraph.pl`-style folded
//! stacks for visualisation.

use rvsim_isa::Instr;
use rvsim_snapshot::{self as snap, Json, SnapError};

/// Cycles binned per guest PC over one instruction memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcProfile {
    base: u32,
    bins: Vec<u64>,
    /// Cycles attributed to PCs outside the instruction memory (trap
    /// vectors pointing nowhere, misconfigured guests).
    pub other: u64,
}

/// One straight-line run of instructions with its attributed cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotBlock {
    /// First instruction address of the block.
    pub start: u32,
    /// Last instruction address of the block (inclusive).
    pub end: u32,
    /// Simulated cycles attributed to PCs inside the block.
    pub cycles: u64,
}

impl HotBlock {
    /// Number of instruction slots the block spans.
    pub fn len(&self) -> usize {
        ((self.end - self.start) / 4 + 1) as usize
    }

    /// Whether the block is empty (never true for emitted blocks).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl PcProfile {
    /// An empty profile over an instruction memory of `size` bytes based
    /// at `base`.
    pub fn new(base: u32, size: u32) -> PcProfile {
        PcProfile {
            base,
            bins: vec![0; size.div_ceil(4) as usize],
            other: 0,
        }
    }

    /// Base address of the profiled instruction memory.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Serializes the per-PC bins (run-length encoded) for a
    /// machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        Json::object()
            .with("base", self.base)
            .with("len", self.bins.len())
            .with("bins", snap::longs_to_json(&self.bins))
            .with("other", self.other)
    }

    /// Rebuilds a profile from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on missing fields or a bins/length mismatch.
    pub fn from_snap(value: &Json) -> Result<PcProfile, SnapError> {
        let len = snap::get_usize(value, "len")?;
        Ok(PcProfile {
            base: snap::get_u32(value, "base")?,
            bins: snap::longs_from_json(snap::field(value, "bins")?, len)?,
            other: snap::get_u64(value, "other")?,
        })
    }

    /// Attributes `cycles` to `pc`.
    #[inline]
    pub fn add(&mut self, pc: u32, cycles: u64) {
        let idx = pc.wrapping_sub(self.base) / 4;
        match self.bins.get_mut(idx as usize) {
            Some(bin) => *bin += cycles,
            None => self.other += cycles,
        }
    }

    /// Total attributed cycles (including out-of-range ones).
    pub fn total_cycles(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.other
    }

    /// Cycles attributed to `pc` (0 when outside the memory).
    pub fn cycles_at(&self, pc: u32) -> u64 {
        let idx = pc.wrapping_sub(self.base) / 4;
        self.bins.get(idx as usize).copied().unwrap_or(0)
    }

    /// `(pc, cycles)` for every PC with non-zero attribution, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.base + (i as u32) * 4, c))
    }

    /// Merges another profile over the same instruction memory (per-hart
    /// profiles into a machine-wide view).
    ///
    /// # Panics
    ///
    /// Panics when the memories differ in base or size.
    pub fn merge(&mut self, other: &PcProfile) {
        assert_eq!(self.base, other.base, "merging profiles of different imems");
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "merging profiles of different imems"
        );
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.other += other.other;
    }

    /// Folds the per-PC bins into ranked basic blocks. `decode` maps a PC
    /// to its decoded instruction (`None` for data words / out-of-range) —
    /// pass the owning engine's decoder so the segmentation sees exactly
    /// what executed.
    ///
    /// Blocks are split after any control transfer (branch, `jal`,
    /// `jalr`, `mret`, `ebreak`/`ecall`, `wfi`) and before any
    /// statically-known branch/jump target, then ranked by attributed
    /// cycles, descending. Zero-cycle blocks are dropped.
    pub fn hot_blocks(&self, mut decode: impl FnMut(u32) -> Option<Instr>) -> Vec<HotBlock> {
        let n = self.bins.len();
        // Leader flags: block starts at base, after each block ender, and
        // at each statically-known control-transfer target.
        let mut leader = vec![false; n];
        let mut ender = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for i in 0..n {
            let pc = self.base + (i as u32) * 4;
            let Some(instr) = decode(pc) else { continue };
            let target = match instr {
                Instr::Jal { offset, .. } => Some(pc.wrapping_add(offset as u32)),
                Instr::Branch { offset, .. } => Some(pc.wrapping_add(offset as u32)),
                _ => None,
            };
            if let Some(t) = target {
                let ti = t.wrapping_sub(self.base) / 4;
                if let Some(l) = leader.get_mut(ti as usize) {
                    *l = true;
                }
            }
            if matches!(
                instr,
                Instr::Jal { .. }
                    | Instr::Jalr { .. }
                    | Instr::Branch { .. }
                    | Instr::Mret
                    | Instr::Ebreak
                    | Instr::Ecall
                    | Instr::Wfi
            ) {
                ender[i] = true;
                if i + 1 < n {
                    leader[i + 1] = true;
                }
            }
        }
        let mut blocks = Vec::new();
        let mut start = 0usize;
        let mut cycles = 0u64;
        for i in 0..n {
            if leader[i] && i > start && cycles > 0 {
                blocks.push(HotBlock {
                    start: self.base + (start as u32) * 4,
                    end: self.base + ((i - 1) as u32) * 4,
                    cycles,
                });
            }
            if leader[i] && i > start {
                start = i;
                cycles = 0;
            } else if leader[i] {
                start = i;
            }
            cycles += self.bins[i];
            if ender[i] {
                if cycles > 0 {
                    blocks.push(HotBlock {
                        start: self.base + (start as u32) * 4,
                        end: self.base + (i as u32) * 4,
                        cycles,
                    });
                }
                start = i + 1;
                cycles = 0;
            }
        }
        if start < n && cycles > 0 {
            blocks.push(HotBlock {
                start: self.base + (start as u32) * 4,
                end: self.base + ((n - 1) as u32) * 4,
                cycles,
            });
        }
        blocks.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.start.cmp(&b.start)));
        blocks
    }

    /// Renders the profile as `flamegraph.pl` folded-stack lines, one per
    /// hot block: `"<root>;block_<start>_<end> <cycles>"`. The guest has
    /// no call-stack metadata, so the "stack" is two frames deep — root
    /// label (e.g. `hart0`) over the block.
    pub fn folded(&self, root: &str, decode: impl FnMut(u32) -> Option<Instr>) -> String {
        let mut out = String::new();
        for b in self.hot_blocks(decode) {
            out.push_str(&format!(
                "{root};block_{:#010x}_{:#010x} {}\n",
                b.start, b.end, b.cycles
            ));
        }
        if self.other > 0 {
            out.push_str(&format!("{root};outside_imem {}\n", self.other));
        }
        out
    }
}

/// Renders a ranked hot-block table (top `limit` rows) with each block's
/// share of total attributed cycles — the seed list for a translation
/// cache.
pub fn hot_block_report(profile: &PcProfile, blocks: &[HotBlock], limit: usize) -> String {
    let total = profile.total_cycles().max(1);
    let mut out = String::from("| rank | block | instrs | cycles | share |\n");
    out.push_str("|---|---|---|---|---|\n");
    for (rank, b) in blocks.iter().take(limit).enumerate() {
        out.push_str(&format!(
            "| {} | {:#010x}..{:#010x} | {} | {} | {:.2}% |\n",
            rank + 1,
            b.start,
            b.end,
            b.len(),
            b.cycles,
            b.cycles as f64 * 100.0 / total as f64,
        ));
    }
    out
}

/// Renders the ranked hot-block table with per-block translation-cache
/// columns appended: dispatches, hit rate, fused macro-ops executed and
/// retranslations, from [`BlockStats`](crate::engine::BlockStats) folded
/// over each block's PC range (pass the owning engine's
/// `block_stats_in`). Blocks the cache never entered show all-zero
/// columns — e.g. handler bodies reached only through trap entry.
pub fn hot_block_report_with_blocks(
    profile: &PcProfile,
    blocks: &[HotBlock],
    limit: usize,
    mut stats: impl FnMut(u32, u32) -> crate::engine::BlockStats,
) -> String {
    let total = profile.total_cycles().max(1);
    let mut out = String::from(
        "| rank | block | instrs | cycles | share | bc execs | hit rate | fused | retrans |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for (rank, b) in blocks.iter().take(limit).enumerate() {
        let s = stats(b.start, b.end);
        out.push_str(&format!(
            "| {} | {:#010x}..{:#010x} | {} | {} | {:.2}% | {} | {:.1}% | {} | {} |\n",
            rank + 1,
            b.start,
            b.end,
            b.len(),
            b.cycles,
            b.cycles as f64 * 100.0 / total as f64,
            s.execs,
            s.hit_rate() * 100.0,
            s.fused,
            s.retranslations(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_isa::{Asm, Reg};

    fn decoder(program: &rvsim_isa::Program) -> impl FnMut(u32) -> Option<Instr> + '_ {
        move |pc| {
            let idx = pc.wrapping_sub(program.base) / 4;
            program
                .words
                .get(idx as usize)
                .and_then(|&w| rvsim_isa::decode(w).ok())
        }
    }

    #[test]
    fn attribution_and_totals() {
        let mut p = PcProfile::new(0x100, 0x40);
        p.add(0x100, 3);
        p.add(0x104, 1);
        p.add(0x100, 2);
        p.add(0xdead_0000, 7); // outside
        assert_eq!(p.cycles_at(0x100), 5);
        assert_eq!(p.total_cycles(), 13);
        assert_eq!(
            p.nonzero().collect::<Vec<_>>(),
            vec![(0x100, 5), (0x104, 1)]
        );
    }

    #[test]
    fn merge_requires_matching_imem_and_adds_bins() {
        let mut a = PcProfile::new(0, 0x20);
        let mut b = PcProfile::new(0, 0x20);
        a.add(0, 1);
        b.add(0, 2);
        b.add(4, 3);
        a.merge(&b);
        assert_eq!(a.cycles_at(0), 3);
        assert_eq!(a.cycles_at(4), 3);
    }

    #[test]
    fn blocks_split_at_control_flow_and_targets() {
        // 0x00: addi t0,t0,1
        // 0x04: bnez t0, 0x00      <- ender, target makes 0x00 a leader
        // 0x08: addi t1,t1,1
        // 0x0c: ebreak             <- ender
        let mut a = Asm::new(0);
        a.label("top");
        a.addi(Reg::T0, Reg::T0, 1);
        a.bnez(Reg::T0, "top");
        a.addi(Reg::T1, Reg::T1, 1);
        a.ebreak();
        let prog = a.finish().unwrap();
        let mut p = PcProfile::new(0, 0x10);
        p.add(0x0, 10);
        p.add(0x4, 30);
        p.add(0x8, 1);
        p.add(0xc, 1);
        let blocks = p.hot_blocks(decoder(&prog));
        assert_eq!(
            blocks,
            vec![
                HotBlock {
                    start: 0x0,
                    end: 0x4,
                    cycles: 40
                },
                HotBlock {
                    start: 0x8,
                    end: 0xc,
                    cycles: 2
                },
            ]
        );
        let folded = p.folded("guest", decoder(&prog));
        assert!(folded.contains("guest;block_0x00000000_0x00000004 40"));
        let report = hot_block_report(&p, &blocks, 10);
        assert!(report.contains("| 1 | 0x00000000..0x00000004 | 2 | 40 |"));
    }

    #[test]
    fn block_cache_columns_render_hit_rate_and_retranslations() {
        let mut a = Asm::new(0);
        a.label("top");
        a.addi(Reg::T0, Reg::T0, 1);
        a.bnez(Reg::T0, "top");
        a.ebreak();
        let prog = a.finish().unwrap();
        let mut p = PcProfile::new(0, 0x10);
        p.add(0x0, 40);
        let blocks = p.hot_blocks(decoder(&prog));
        // 10 dispatches, 3 builds over 1 entry PC: 70% hit rate, 2
        // retranslations.
        let report =
            hot_block_report_with_blocks(&p, &blocks, 10, |_, _| crate::engine::BlockStats {
                builds: 3,
                execs: 10,
                fused: 4,
                entries: 1,
            });
        assert!(report.contains("| 10 | 70.0% | 4 | 2 |"), "{report}");
    }
}
