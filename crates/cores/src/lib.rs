//! Cycle-stepped RISC-V core timing models for the RTOSUnit reproduction.
//!
//! The paper integrates its RTOSUnit into three RISC-V cores of increasing
//! complexity (§3, §5):
//!
//! 1. **CV32E40P** — microcontroller-class, 4-stage in-order pipeline,
//! 2. **CVA6** — application-class, 6-stage, in-order issue with
//!    out-of-order write-back and a write-through cache,
//! 3. **NaxRiscv** — superscalar out-of-order with register renaming,
//!    speculation and a write-back cache.
//!
//! This crate models those cores at the *timing* level: a shared functional
//! executor ([`exec`]) provides RV32IM_Zicsr semantics, and a cycle-stepped
//! engine ([`engine::CoreEngine`]) charges per-instruction latencies,
//! memory-port occupancy, branch/mispredict penalties and interrupt-entry
//! flushes according to a per-core [`timing::TimingParams`]. The engine
//! talks to an attached accelerator through the [`coproc::Coprocessor`]
//! trait; the RTOSUnit itself lives in the `rtosunit` crate.
//!
//! Fidelity notes are in `DESIGN.md` §5: the models reproduce the paper's
//! measurement (cycles from interrupt trigger to `mret`) and its jitter
//! sources, not the exact RTL microarchitecture.

pub mod blockcache;
pub mod coproc;
pub mod counters;
pub mod cpu;
pub mod csrs;
pub mod engine;
pub mod exec;
pub mod fault;
pub mod golden;
pub mod models;
pub mod profile;
pub mod state;
pub mod timing;

pub use coproc::{Coprocessor, NullCoprocessor};
pub use counters::CoreCounters;
pub use cpu::{make_cpu, make_golden_cpu, CpuCore, Executed, GoldenCpu};
pub use csrs::Csrs;
pub use engine::{
    stop_events, BatchExit, BlockStats, CoreEngine, CoreEvent, DataBus, StepOutput, StopReason,
};
pub use fault::{fault_code_name, FaultEvent, FaultKind, FaultPlan, FaultTargets};
pub use golden::{GoldenCore, GoldenStep};
pub use models::{make_engine, CoreKind};
pub use profile::{hot_block_report, hot_block_report_with_blocks, HotBlock, PcProfile};
pub use state::{ArchState, Bank};
pub use timing::TimingParams;
