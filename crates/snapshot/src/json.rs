//! A minimal, dependency-free JSON value builder, serializer and parser.
//!
//! Campaign artifacts (`results/*.json`) and BENCH reports are written
//! through this module so the whole experiment stack stays offline-friendly
//! (no serde). Serialization is deterministic: object keys keep insertion
//! order, floats use Rust's shortest round-trip formatting, and the writer
//! emits a stable two-space-indented layout — byte-identical output for
//! equal values, which the campaign determinism tests rely on.
//!
//! [`Json::parse`] is the matching reader; the CI smoke test uses it to
//! validate that emitted trace artifacts are well-formed JSON.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (no hashing) so output
/// is reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (no float round-trip).
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair; panics if `self` is not an object.
    /// Returns `self` for chaining.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.push(key, value);
        self
    }

    /// Appends a key/value pair in place; panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Object(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::push on non-object"),
        }
    }

    /// Whether this value renders without internal line breaks.
    fn is_scalar(&self) -> bool {
        !matches!(self, Json::Array(_) | Json::Object(_))
    }

    /// Looks up `key` in an object (first match, insertion order).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`: any numeric variant widens (`u64` values
    /// beyond 2^53 lose precision, as in any JSON reader).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Parses a JSON document (the full text must be one value).
    ///
    /// Integers that fit stay exact ([`Json::UInt`]/[`Json::Int`]); other
    /// numbers become [`Json::Float`]. Duplicate object keys are kept as
    /// written (first wins for [`Json::get`]).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with a byte offset and message on
    /// malformed input. Nesting beyond [`MAX_DEPTH`] containers and
    /// numbers that overflow `f64` range are malformed, not panics.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Renders with a trailing newline, two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays (e.g. latency vectors with thousands
                // of entries) render on one line to keep artifacts compact.
                if items.iter().all(Json::is_scalar) {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, depth);
                    }
                    out.push(']');
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

/// Parse failure: byte offset into the input plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum container nesting [`Json::parse`] accepts. The reader is
/// recursive-descent, so unbounded nesting would overflow the stack on
/// adversarial input like `[[[[...`; every artifact this repo emits is
/// a handful of levels deep.
pub const MAX_DEPTH: usize = 128;

/// Recursive-descent JSON reader over raw bytes (the input is known to
/// be valid UTF-8, so multi-byte characters only appear inside strings).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object_value(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped spans wholesale (covers multi-byte UTF-8).
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("input was a &str, spans stay on char boundaries"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonParseError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let high = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: the low half must follow as \uXXXX.
                    if self.literal("\\u", Json::Null).is_err() {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    let low = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    high
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?
            }
            c => return Err(self.err(format!("invalid escape `\\{}`", c as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let v = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + v;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            // `1e999` parses to infinity; JSON has no non-finite numbers,
            // so out-of-range is malformed rather than a silent null.
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            _ => Err(self.err(format!("invalid number `{text}`"))),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// JSON has no NaN/Infinity; they serialize as `null`. Finite floats use
/// Rust's shortest round-trip `Display`, forced to keep a decimal point so
/// they stay float-typed for consumers.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u64::from(u))
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}
impl From<&[u64]> for Json {
    fn from(v: &[u64]) -> Json {
        Json::Array(v.iter().map(|&u| Json::UInt(u)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::object()
            .with("name", "fig9")
            .with("ok", true)
            .with("count", 3u64)
            .with("mean", 70.25)
            .with("tags", Json::Array(vec![Json::Int(1), Json::Null]));
        let s = j.render();
        assert!(s.contains("\"name\": \"fig9\""));
        assert!(s.contains("\"mean\": 70.25"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("null"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut s = String::new();
        write_f64(&mut s, 70.0);
        assert_eq!(s, "70.0");
        s.clear();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let j = Json::object()
            .with("name", "fig9")
            .with("ok", true)
            .with("none", Json::Null)
            .with("count", 3u64)
            .with("neg", -7i64)
            .with("mean", 70.25)
            .with("text", "a\"b\\c\nd")
            .with("rows", Json::Array(vec![Json::UInt(1), Json::UInt(2)]))
            .with("empty_obj", Json::object())
            .with("empty_arr", Json::Array(vec![]))
            .with(
                "nested",
                Json::object().with("deep", Json::Array(vec![Json::object()])),
            );
        let parsed = Json::parse(&j.render()).expect("round trip");
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let parsed = Json::parse(r#""a\u0041\n\ud83d\ude00\/""#).expect("parses");
        assert_eq!(parsed.as_str(), Some("aA\n\u{1F600}/"));
        assert_eq!(Json::parse("\"caf\u{e9}\"").unwrap().as_str(), Some("café"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": 1,}",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed `{bad}`");
        }
    }

    #[test]
    fn parse_rejects_truncated_documents() {
        // Every prefix of a valid document must fail cleanly, never panic.
        let full = r#"{"a": [1, -2.5, "xA"], "b": {"c": null}}"#;
        for cut in 1..full.len() {
            assert!(
                Json::parse(&full[..cut]).is_err(),
                "accepted truncated `{}`",
                &full[..cut]
            );
        }
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let deep = |n: usize| "[".repeat(n) + &"]".repeat(n);
        assert!(Json::parse(&deep(MAX_DEPTH)).is_ok());
        let err = Json::parse(&deep(MAX_DEPTH + 1)).expect_err("too deep");
        assert!(err.message.contains("nesting"), "{err}");
        // Mixed and unclosed nesting must fail too, not overflow the stack.
        assert!(Json::parse(&"[{\"k\":".repeat(100_000)).is_err());
        assert!(Json::parse(&"[".repeat(1_000_000)).is_err());
    }

    #[test]
    fn parse_rejects_bad_escapes() {
        for bad in [
            r#""\x41""#,    // unknown escape letter
            r#""\u12""#,    // short hex
            r#""\u12g4""#,  // non-hex digit
            r#""\ud800x""#, // high surrogate without a pair
            r#""\udc00""#,  // lone low surrogate
            r#""\ud800A""#, // high surrogate paired with non-surrogate
            "\"\\",         // escape at end of input
        ] {
            assert!(Json::parse(bad).is_err(), "accepted bad escape `{bad}`");
        }
    }

    #[test]
    fn parse_rejects_nan_like_numbers() {
        for bad in [
            "NaN",
            "nan",
            "Infinity",
            "-Infinity",
            "inf",
            "-inf",
            "1e999",
            "-1e999",
            "-",
            "--1",
            "1.2.3",
            "1e",
            "0x10",
            "+1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
        // Large magnitudes that still fit f64 stay accepted.
        assert_eq!(Json::parse("1e308").unwrap(), Json::Float(1e308));
        assert_eq!(
            Json::parse("18446744073709551616").unwrap(),
            Json::Float(18446744073709551616.0)
        );
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse(r#"{"runs": [{"cycles": 42, "label": "x"}], "neg": -1}"#).unwrap();
        let runs = doc.get("runs").and_then(Json::as_array).expect("array");
        assert_eq!(runs[0].get("cycles").and_then(Json::as_u64), Some(42));
        assert_eq!(runs[0].get("label").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("neg").and_then(Json::as_u64), None);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            Json::object()
                .with("rows", Json::Array(vec![Json::UInt(1), Json::UInt(2)]))
                .with("empty", Json::object())
                .with("none", Json::Array(vec![]))
        };
        assert_eq!(build().render(), build().render());
    }
}
