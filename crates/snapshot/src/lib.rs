//! The **snapshot substrate**: a versioned, dependency-free container for
//! full machine state (ROADMAP item 5).
//!
//! Snapshots are self-describing JSON documents built with the in-tree
//! [`Json`] module (which lives here so every crate in the workspace can
//! serialize state without new dependencies):
//!
//! ```text
//! {
//!   "schema": "rtosunit-snapshot-v1",
//!   "digest": "0x<fnv1a-64 of the rendered state>",
//!   "state": { ... }
//! }
//! ```
//!
//! The `state` payload is produced by `to_snap`/`restore_snap` methods on
//! each state-bearing struct (they live next to the structs, since most
//! fields are module-private). This crate owns only the *container*:
//!
//! * [`seal`] wraps a state value with the schema tag and a digest over
//!   its rendered bytes,
//! * [`open`] parses a document, checks the schema and re-verifies the
//!   digest — a truncated document fails to parse, a bit-flipped one
//!   fails the digest check, a future-versioned one is rejected by name.
//!   Corruption is an error, never a mis-restore.
//!
//! Determinism rules for snapshot producers: integers and strings only
//! (floats round-trip exactly through [`Json`], but none are needed),
//! object keys in fixed insertion order, any hash-map state serialized in
//! sorted key order. Under those rules `Json::parse(render(x)) == x`, so
//! digests computed at seal time and verify time always agree.
//!
//! Word-array payloads (memories, decode bitmaps, profile bins) use the
//! run-length codec ([`words_to_json`]/[`words_from_json`]): a flat
//! `[len0, val0, len1, val1, ...]` array — mostly-zero 64 KiB memories
//! collapse to a handful of runs.

pub mod json;

pub use json::{Json, JsonParseError};

/// Schema tag of version 1 snapshot artifacts.
pub const SCHEMA: &str = "rtosunit-snapshot-v1";

/// FNV-1a 64-bit offset basis.
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit digest of `bytes` (the same function the artifact pin in
/// `tests/verification.rs` uses).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A snapshot decoding failure: what was being read and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// Human-readable context, e.g. `"core.csrs.mstatus: missing field"`.
    pub context: String,
}

impl SnapError {
    /// Creates an error with the given context message.
    pub fn new(context: impl Into<String>) -> SnapError {
        SnapError {
            context: context.into(),
        }
    }
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot error: {}", self.context)
    }
}

impl std::error::Error for SnapError {}

/// Wraps a state payload into a sealed, self-describing snapshot
/// document. The digest covers the rendered bytes of `state`, so any
/// in-flight corruption of the payload is detected by [`open`].
pub fn seal(state: Json) -> Json {
    let digest = fnv1a(state.render().as_bytes());
    Json::object()
        .with("schema", SCHEMA)
        .with("digest", format!("{digest:#018x}"))
        .with("state", state)
}

/// Parses and verifies a sealed snapshot document, returning the state
/// payload.
///
/// # Errors
///
/// Fails on malformed JSON (including truncation), a missing or unknown
/// schema tag, a missing digest, or a digest mismatch (bit-level
/// corruption of the state payload).
pub fn open(text: &str) -> Result<Json, SnapError> {
    let doc = Json::parse(text).map_err(|e| SnapError::new(format!("document: {e}")))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| SnapError::new("document: missing schema tag"))?;
    if schema != SCHEMA {
        return Err(SnapError::new(format!(
            "document: unsupported schema `{schema}` (expected `{SCHEMA}`)"
        )));
    }
    let digest_text = doc
        .get("digest")
        .and_then(Json::as_str)
        .ok_or_else(|| SnapError::new("document: missing digest"))?;
    let claimed = u64::from_str_radix(digest_text.trim_start_matches("0x"), 16)
        .map_err(|_| SnapError::new(format!("document: malformed digest `{digest_text}`")))?;
    let state = doc
        .get("state")
        .ok_or_else(|| SnapError::new("document: missing state payload"))?;
    let actual = fnv1a(state.render().as_bytes());
    if actual != claimed {
        return Err(SnapError::new(format!(
            "document: digest mismatch (stored {claimed:#018x}, computed {actual:#018x}) — \
             snapshot is corrupted"
        )));
    }
    Ok(state.clone())
}

/// Looks up a required object field.
///
/// # Errors
///
/// Fails when `value` is not an object or lacks `key`.
pub fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, SnapError> {
    value
        .get(key)
        .ok_or_else(|| SnapError::new(format!("{key}: missing field")))
}

/// Reads a required `u64` field.
///
/// # Errors
///
/// Fails when the field is missing or not a non-negative integer.
pub fn get_u64(value: &Json, key: &str) -> Result<u64, SnapError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| SnapError::new(format!("{key}: expected unsigned integer")))
}

/// Reads a required `u32` field.
///
/// # Errors
///
/// Fails when the field is missing, not an integer, or out of range.
pub fn get_u32(value: &Json, key: &str) -> Result<u32, SnapError> {
    u32::try_from(get_u64(value, key)?)
        .map_err(|_| SnapError::new(format!("{key}: value exceeds u32 range")))
}

/// Reads a required `u8` field.
///
/// # Errors
///
/// Fails when the field is missing, not an integer, or out of range.
pub fn get_u8(value: &Json, key: &str) -> Result<u8, SnapError> {
    u8::try_from(get_u64(value, key)?)
        .map_err(|_| SnapError::new(format!("{key}: value exceeds u8 range")))
}

/// Reads a required `usize` field.
///
/// # Errors
///
/// Fails when the field is missing, not an integer, or out of range.
pub fn get_usize(value: &Json, key: &str) -> Result<usize, SnapError> {
    usize::try_from(get_u64(value, key)?)
        .map_err(|_| SnapError::new(format!("{key}: value exceeds usize range")))
}

/// Reads a required `bool` field.
///
/// # Errors
///
/// Fails when the field is missing or not a boolean.
pub fn get_bool(value: &Json, key: &str) -> Result<bool, SnapError> {
    match field(value, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(SnapError::new(format!("{key}: expected boolean"))),
    }
}

/// Reads a required string field.
///
/// # Errors
///
/// Fails when the field is missing or not a string.
pub fn get_str<'a>(value: &'a Json, key: &str) -> Result<&'a str, SnapError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| SnapError::new(format!("{key}: expected string")))
}

/// Reads a required array field.
///
/// # Errors
///
/// Fails when the field is missing or not an array.
pub fn get_array<'a>(value: &'a Json, key: &str) -> Result<&'a [Json], SnapError> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| SnapError::new(format!("{key}: expected array")))
}

/// Encodes a `u32` word array as a run-length JSON array:
/// `[len0, val0, len1, val1, ...]`. Mostly-uniform payloads (zeroed
/// memories, cold decode bitmaps) collapse to a few runs.
pub fn words_to_json(words: &[u32]) -> Json {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < words.len() {
        let val = words[i];
        let mut len = 1u64;
        while i + (len as usize) < words.len() && words[i + len as usize] == val {
            len += 1;
        }
        runs.push(Json::UInt(len));
        runs.push(Json::UInt(u64::from(val)));
        i += len as usize;
    }
    Json::Array(runs)
}

/// Decodes a run-length `u32` word array produced by [`words_to_json`],
/// checking the total length against `expect_len`.
///
/// # Errors
///
/// Fails on malformed runs or a length mismatch.
pub fn words_from_json(value: &Json, expect_len: usize) -> Result<Vec<u32>, SnapError> {
    let runs = value
        .as_array()
        .ok_or_else(|| SnapError::new("words: expected run-length array"))?;
    if runs.len() % 2 != 0 {
        return Err(SnapError::new("words: odd run-length array"));
    }
    let mut words = Vec::with_capacity(expect_len);
    for pair in runs.chunks_exact(2) {
        let len = pair[0]
            .as_u64()
            .ok_or_else(|| SnapError::new("words: run length not an integer"))?;
        let val = pair[1]
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| SnapError::new("words: run value not a u32"))?;
        if words.len() + len as usize > expect_len {
            return Err(SnapError::new("words: runs exceed expected length"));
        }
        words.extend(std::iter::repeat_n(val, len as usize));
    }
    if words.len() != expect_len {
        return Err(SnapError::new(format!(
            "words: decoded {} words, expected {expect_len}",
            words.len()
        )));
    }
    Ok(words)
}

/// Encodes a `u64` array as a run-length JSON array (profiler bins).
pub fn longs_to_json(values: &[u64]) -> Json {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < values.len() {
        let val = values[i];
        let mut len = 1u64;
        while i + (len as usize) < values.len() && values[i + len as usize] == val {
            len += 1;
        }
        runs.push(Json::UInt(len));
        runs.push(Json::UInt(val));
        i += len as usize;
    }
    Json::Array(runs)
}

/// Decodes a run-length `u64` array produced by [`longs_to_json`].
///
/// # Errors
///
/// Fails on malformed runs or a length mismatch.
pub fn longs_from_json(value: &Json, expect_len: usize) -> Result<Vec<u64>, SnapError> {
    let runs = value
        .as_array()
        .ok_or_else(|| SnapError::new("longs: expected run-length array"))?;
    if runs.len() % 2 != 0 {
        return Err(SnapError::new("longs: odd run-length array"));
    }
    let mut values = Vec::with_capacity(expect_len);
    for pair in runs.chunks_exact(2) {
        let len = pair[0]
            .as_u64()
            .ok_or_else(|| SnapError::new("longs: run length not an integer"))?;
        let val = pair[1]
            .as_u64()
            .ok_or_else(|| SnapError::new("longs: run value not a u64"))?;
        if values.len() + len as usize > expect_len {
            return Err(SnapError::new("longs: runs exceed expected length"));
        }
        values.extend(std::iter::repeat_n(val, len as usize));
    }
    if values.len() != expect_len {
        return Err(SnapError::new(format!(
            "longs: decoded {} values, expected {expect_len}",
            values.len()
        )));
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> Json {
        Json::object()
            .with("cycle", 12345u64)
            .with("pc", 0x8000_0000u32)
            .with("mem", words_to_json(&[0, 0, 0, 7, 7, 1, 0, 0]))
    }

    #[test]
    fn seal_open_round_trips() {
        let state = sample_state();
        let doc = seal(state.clone());
        let text = doc.render();
        let reopened = open(&text).expect("sealed snapshot must open");
        assert_eq!(reopened, state);
    }

    #[test]
    fn open_rejects_truncation() {
        let text = seal(sample_state()).render();
        for cut in (1..text.len()).step_by(7) {
            assert!(open(&text[..cut]).is_err(), "accepted truncation at {cut}");
        }
    }

    #[test]
    fn open_rejects_bit_flips_in_the_state() {
        let text = seal(sample_state()).render();
        // Flip one digit inside the state payload (the cycle count).
        let tampered = text.replacen("12345", "12346", 1);
        assert_ne!(text, tampered, "tamper site must exist");
        let err = open(&tampered).expect_err("tampered snapshot must be rejected");
        assert!(err.context.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn open_rejects_unknown_schema() {
        let doc = seal(sample_state());
        let text = doc.render().replace(SCHEMA, "rtosunit-snapshot-v99");
        let err = open(&text).expect_err("future schema must be rejected");
        assert!(err.context.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn digests_are_stable_across_seals() {
        let a = seal(sample_state()).render();
        let b = seal(sample_state()).render();
        assert_eq!(a, b, "sealing the same state twice must be byte-identical");
    }

    #[test]
    fn rle_round_trips_and_checks_length() {
        let words: Vec<u32> = (0..256).map(|i| if i % 17 == 0 { i } else { 0 }).collect();
        let json = words_to_json(&words);
        assert_eq!(words_from_json(&json, 256).expect("round trip"), words);
        assert!(words_from_json(&json, 255).is_err());
        assert!(words_from_json(&json, 257).is_err());

        let longs: Vec<u64> = vec![u64::MAX, u64::MAX, 0, 1];
        let json = longs_to_json(&longs);
        assert_eq!(longs_from_json(&json, 4).expect("round trip"), longs);
    }

    #[test]
    fn typed_readers_report_context() {
        let obj = Json::object().with("a", 1u64).with("s", "x");
        assert_eq!(get_u64(&obj, "a"), Ok(1));
        assert_eq!(get_str(&obj, "s"), Ok("x"));
        assert!(get_u64(&obj, "missing")
            .unwrap_err()
            .context
            .contains("missing"));
        assert!(get_u8(&Json::object().with("b", 300u64), "b").is_err());
        assert!(get_bool(&obj, "a").is_err());
    }
}
