#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build and the full test suite.
# Mirrors .github/workflows/ci.yml so the same checks run locally.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (workspace)"
cargo test -q --release --workspace

echo "== trace_dump smoke test (emits + validates results/trace_dump*.json)"
# The binary re-parses its own Chrome trace-event output and asserts the
# irq/entry/phase/mret/cache event vocabulary is present (panics if not),
# then repeats the exercise for a two-hart SMP run with per-hart tracks.
cargo run -q --release -p rtosunit-bench --bin trace_dump > /dev/null
test -s results/trace_dump.json
test -s results/trace_dump_smp.json
python3 -c "import json; json.load(open('results/trace_dump.json')); json.load(open('results/trace_dump_smp.json'))" 2>/dev/null \
  || echo "   (python3 unavailable — relying on the binary's self-validation)"

echo "== examples smoke test"
for ex in quickstart sensor_control_loop wcet_analysis config_explorer; do
  echo "   example: $ex"
  cargo run -q --release --example "$ex" > /dev/null
done

echo "CI OK"
