#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build and the full test suite.
# Mirrors .github/workflows/ci.yml so the same checks run locally.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (workspace)"
cargo test -q --release --workspace

echo "CI OK"
