#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build and the full test suite.
# Mirrors .github/workflows/ci.yml so the same checks run locally.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (workspace)"
cargo test -q --release --workspace

echo "== trace_dump smoke test (emits + validates results/trace_dump*.json)"
# The binary re-parses its own Chrome trace-event output and asserts the
# irq/entry/phase/mret/cache event vocabulary is present (panics if not),
# then repeats the exercise for a two-hart SMP run with per-hart tracks.
cargo run -q --release -p rtosunit-bench --bin trace_dump > /dev/null
test -s results/trace_dump.json
test -s results/trace_dump_smp.json
# Foreign-parser checks below are skipped only when python3 is genuinely
# absent; a failing assertion fails the gate (previously the assertion
# failures hid behind the same fallback and the check was silently dead).
if command -v python3 > /dev/null 2>&1; then HAVE_PY=1; else HAVE_PY=0; fi
if [ "$HAVE_PY" = 1 ]; then
  python3 -c "import json; json.load(open('results/trace_dump.json')); json.load(open('results/trace_dump_smp.json'))"
else
  echo "   (python3 unavailable — relying on the binary's self-validation)"
fi

echo "== tail-latency figure + schema-v3 smoke test"
# Quick bursty-arrival sweep; the artifact carries the full telemetry
# schema (per-run histograms, percentiles, SLO misses, aggregate).
cargo run -q --release -p rtosunit-bench --bin fig_tail -- --quick > /dev/null
test -s results/fig_tail_quick.json
if [ "$HAVE_PY" = 1 ]; then
  python3 -c "
import json
d = json.load(open('results/fig_tail_quick.json'))
assert d['schema'] == 'rtosunit-campaign-v3', d['schema']
for run in d['runs']:
    h = run['sim']['latency_hist']
    assert 'p99.9' in h['latency']['percentiles'], run['label']
    assert h['slo'] is not None and 'miss_rate' in h['slo'], run['label']
assert 'aggregate' in d
"
else
  echo "   (python3 unavailable — relying on tests/perfgate.rs)"
fi

echo "== fault-injection smoke (fig_faults --quick; tier-1 campaign is tests/faults.rs)"
# The ~200-injection tier-1 slice runs inside `cargo test` above
# (crates/check/tests/faults.rs). This step smoke-tests the figure bin:
# 72 classified runs across 3 cores x {vanilla, SLT, SDLOT}, every
# outcome on the lattice, crashes quarantined as replay artifacts.
cargo run -q --release -p rtosunit-bench --bin fig_faults -- --quick > /dev/null
test -s results/fig_faults_quick.json
if [ "$HAVE_PY" = 1 ]; then
  python3 -c "
import json
d = json.load(open('results/fig_faults_quick.json'))
assert d['schema'] == 'rtosunit-faultcamp-v1', d['schema']
assert len(d['runs']) == 72, len(d['runs'])
assert all(r['outcome'] for r in d['runs'])
assert len(d['cells']) == 9, len(d['cells'])
"
else
  echo "   (python3 unavailable — relying on tests/faults.rs)"
fi

echo "== perfdiff regression gate (deterministic metrics, zero tolerance)"
cargo run -q --release -p rtosunit-bench --bin perfdiff -- \
  ci/perf_baseline.json results/fig_tail_quick.json --no-throughput --tolerance 0 > /dev/null

echo "== block-cache smoke (fig9 --quick / fig_tail --quick with --blocks)"
# The block translation cache must be invisible in every artifact:
# fig9's v1 artifact is byte-compared against the interpreted run, and
# the tail sweep's deterministic metrics are re-gated against the same
# committed baseline with the cache enabled.
cargo run -q --release -p rtosunit-bench --bin fig9 -- --quick > /dev/null
cp results/fig9_quick.json results/fig9_quick_interp.json
cargo run -q --release -p rtosunit-bench --bin fig9 -- --quick --blocks > /dev/null
cmp results/fig9_quick_interp.json results/fig9_quick.json
rm results/fig9_quick_interp.json
cargo run -q --release -p rtosunit-bench --bin fig_tail -- --quick --blocks > /dev/null
cargo run -q --release -p rtosunit-bench --bin perfdiff -- \
  ci/perf_baseline.json results/fig_tail_quick.json --no-throughput --tolerance 0 > /dev/null

echo "== snapshot smoke (roundtrip, resume determinism, fork, time travel)"
# The snapshot contract: a restored system is byte-identical to one that
# never stopped. `roundtrip` byte-diffs the cold-run snapshot against
# save -> restore -> resume; two `resume`s of the same saved document
# must print identical summaries (digest included); `fork` spawns
# divergent futures and proves each is individually deterministic;
# `checkfuzz travel` rewinds checkpointed runs and byte-compares every
# rewound state against cold execution.
cargo run -q --release -p rtosunit-bench --bin snap -- \
  roundtrip naxriscv split interrupt_latency 6000 25000
cargo run -q --release -p rtosunit-bench --bin snap -- \
  save cva6 slt pingpong_semaphore 8000 results/snap_boot.json
cargo run -q --release -p rtosunit-bench --bin snap -- \
  resume results/snap_boot.json 20000 > results/snap_resume_a.txt
cargo run -q --release -p rtosunit-bench --bin snap -- \
  resume results/snap_boot.json 20000 > results/snap_resume_b.txt
cmp results/snap_resume_a.txt results/snap_resume_b.txt
rm results/snap_resume_a.txt results/snap_resume_b.txt
cargo run -q --release -p rtosunit-bench --bin snap -- \
  fork results/snap_boot.json 4 20000 > /dev/null
cargo run -q --release -p rtosunit-bench --bin checkfuzz -- \
  travel --cycles 60000 > /dev/null

echo "== perfdiff throughput gate (relative mode, 10% tolerance)"
cargo bench -q -p rtosunit-bench --bench bench_campaign > /dev/null
cargo run -q --release -p rtosunit-bench --bin perfdiff -- \
  ci/bench_baseline.json results/BENCH_campaign.json --relative --tolerance 0.10

echo "== guest flamegraph smoke test"
cargo run -q --release -p rtosunit-bench --bin guest_profile > /dev/null
test -s results/flamegraph.folded
test -s results/guest_profile.txt

echo "== examples smoke test"
for ex in quickstart sensor_control_loop wcet_analysis config_explorer; do
  echo "   example: $ex"
  cargo run -q --release --example "$ex" > /dev/null
done

echo "CI OK"
