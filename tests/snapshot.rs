//! Snapshot round-trip determinism battery (tier-1).
//!
//! The snapshot contract (DESIGN.md §14): a restored system is
//! cycle-for-cycle, counter-for-counter and trace-for-trace identical to
//! one that never stopped. This battery enforces it across the full
//! matrix — every timing engine × every execution mode (per-cycle
//! stepping, batched `run_until`, block translation cache) × {1, 2, 4}
//! harts × fault injection on/off — and checks the envelope itself:
//! tampered or truncated documents are rejected, and serialization is
//! byte-stable so digests can be pinned.

use rtosunit_suite::bench::workloads;
use rtosunit_suite::check::{smp_scenario_for_seed, smp_scenario_system};
use rtosunit_suite::cores::{CoreKind, FaultEvent, FaultKind, FaultPlan};
use rtosunit_suite::isa::Reg;
use rtosunit_suite::snapshot;
use rtosunit_suite::unit::{Preset, SmpSystem, System};

/// The three ways the simulator executes; the snapshot codec must be
/// invisible under each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Stepwise,
    Batched,
    Blocks,
}

const MODES: [Mode; 3] = [Mode::Stepwise, Mode::Batched, Mode::Blocks];

/// Pairs every engine with a different ISR variant so the battery also
/// crosses unit models (RTOS unit, vanilla, split lanes).
const CELLS: [(CoreKind, Preset); 3] = [
    (CoreKind::Cv32e40p, Preset::Vanilla),
    (CoreKind::Cva6, Preset::Slt),
    (CoreKind::NaxRiscv, Preset::Split),
];

/// A two-fault plan straddling the snapshot point: the first fault has
/// fired (cursor state must survive the round-trip), the second is still
/// pending (and must fire identically on both sides).
fn battery_faults() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent {
            at_cycle: 12_000,
            kind: FaultKind::RegFlip {
                reg: Reg::T4,
                bit: 5,
            },
        },
        FaultEvent {
            at_cycle: 35_000,
            kind: FaultKind::SpuriousIrq,
        },
    ])
}

fn single_hart_system(core: CoreKind, preset: Preset, mode: Mode, faults: bool) -> System {
    let w = workloads::by_name("pingpong_semaphore").expect("suite workload exists");
    let image = workloads::build(&w, preset).expect("workload builds");
    let mut sys = System::new(core, preset);
    image.install(&mut sys);
    sys.enable_tracing(1 << 12);
    if mode == Mode::Blocks {
        sys.set_block_cache(true);
    }
    if faults {
        sys.attach_fault_plan(battery_faults());
    }
    sys
}

fn advance(sys: &mut System, mode: Mode, cycles: u64) {
    match mode {
        Mode::Stepwise => {
            sys.run_stepwise(cycles);
        }
        Mode::Batched | Mode::Blocks => {
            sys.run(cycles);
        }
    }
}

#[test]
fn single_hart_roundtrip_battery() {
    // 3 engines × 3 execution modes × faults on/off: snapshot mid-run,
    // restore into a fresh system, and demand the restored side finish
    // byte-identically to the side that never stopped.
    for (core, preset) in CELLS {
        for mode in MODES {
            for faults in [false, true] {
                let label = format!("{core}/{} {mode:?} faults={faults}", preset.tag());
                let mut original = single_hart_system(core, preset, mode, faults);
                advance(&mut original, mode, 25_000);

                let doc = original.snapshot();
                assert_eq!(
                    doc.render(),
                    original.snapshot().render(),
                    "{label}: serialization is unstable"
                );
                let mut restored =
                    System::from_snapshot(&doc).unwrap_or_else(|e| panic!("{label}: {e}"));

                advance(&mut original, mode, 25_000);
                advance(&mut restored, mode, 25_000);

                assert_eq!(
                    original.platform.cycle(),
                    restored.platform.cycle(),
                    "{label}: cycles diverged"
                );
                assert_eq!(
                    original.records(),
                    restored.records(),
                    "{label}: switch records diverged"
                );
                assert_eq!(
                    original.state_snap().render(),
                    restored.state_snap().render(),
                    "{label}: machine state diverged after restore"
                );
                if faults {
                    assert_eq!(original.faults_applied(), 2, "{label}: plan never fired");
                }
            }
        }
    }
}

#[test]
fn smp_roundtrip_battery() {
    // The same contract for whole multi-core compositions: {2, 4} harts,
    // every engine, every mode, faults on/off. Shared bus arbitration
    // and in-flight IPI mailboxes must survive the round-trip.
    for harts in [2usize, 4] {
        for (i, (core, preset)) in CELLS.into_iter().enumerate() {
            for mode in MODES {
                for faults in [false, true] {
                    let label =
                        format!("{harts}x {core}/{} {mode:?} faults={faults}", preset.tag());
                    let spec = smp_scenario_for_seed(core, preset, harts, 17 + i as u64);
                    let mut original = smp_scenario_system(&spec);
                    if mode == Mode::Blocks {
                        for h in 0..harts {
                            original.hart_mut(h).set_block_cache(true);
                        }
                    }
                    if faults {
                        original.hart_mut(0).attach_fault_plan(FaultPlan::new(vec![
                            FaultEvent {
                                at_cycle: 1_000,
                                kind: FaultKind::RegFlip {
                                    reg: Reg::T4,
                                    bit: 5,
                                },
                            },
                            FaultEvent {
                                at_cycle: 4_000,
                                kind: FaultKind::SpuriousIpi,
                            },
                        ]));
                    }
                    // SMP always steps per-cycle in lockstep; the mode
                    // axis still varies the entry point and the per-hart
                    // block-cache state carried by the snapshot.
                    original.run(2_500);

                    let doc = original.snapshot();
                    assert_eq!(
                        doc.render(),
                        original.snapshot().render(),
                        "{label}: serialization is unstable"
                    );
                    let mut restored =
                        SmpSystem::from_snapshot(&doc).unwrap_or_else(|e| panic!("{label}: {e}"));

                    original.run(2_500);
                    restored.run(2_500);

                    assert_eq!(
                        original.snapshot().render(),
                        restored.snapshot().render(),
                        "{label}: composition diverged after restore"
                    );
                }
            }
        }
    }
}

#[test]
fn snapshot_digests_are_stable_across_identical_runs() {
    // Two independent boots of the same configuration must serialize to
    // the same bytes — the guard against host time, pointer values, or
    // hash-map iteration order leaking into the snapshot (and therefore
    // into pinned digests).
    let run = || {
        let mut sys = single_hart_system(CoreKind::Cva6, Preset::Slt, Mode::Batched, true);
        sys.run(40_000);
        sys.snapshot().render()
    };
    assert_eq!(run(), run());
}

#[test]
fn tampered_and_truncated_snapshots_are_rejected() {
    let mut sys = single_hart_system(CoreKind::Cv32e40p, Preset::Vanilla, Mode::Batched, false);
    sys.run(10_000);
    let text = sys.snapshot().render();

    // The pristine document opens.
    assert!(snapshot::open(&text).is_ok(), "pristine snapshot rejected");

    // Truncation is caught.
    assert!(
        snapshot::open(&text[..text.len() / 2]).is_err(),
        "truncated snapshot accepted"
    );

    // A single flipped payload value breaks the sealed digest.
    let needle = "\"cycle\": 10000";
    assert!(text.contains(needle), "tamper target missing from payload");
    let tampered = text.replace(needle, "\"cycle\": 10001");
    assert_ne!(tampered, text);
    assert!(
        snapshot::open(&tampered).is_err(),
        "tampered snapshot accepted"
    );

    // A wrong schema tag is refused before any state parsing.
    let wrong = text.replace(snapshot::SCHEMA, "rtosunit-snapshot-v0");
    assert!(
        snapshot::open(&wrong).is_err(),
        "wrong-schema snapshot accepted"
    );
}
