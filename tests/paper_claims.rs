//! Cross-crate integration tests asserting the paper's headline claims
//! hold in the reproduction (scaled-down runs so they stay fast in debug
//! builds; the full-size sweeps live in the `fig9` binary).

use rtosunit_suite::bench::{run_workload, WORKLOADS};
use rtosunit_suite::cores::CoreKind;
use rtosunit_suite::unit::Preset;

fn mean_latency(kind: CoreKind, preset: Preset, workload: &str) -> (f64, u64, usize) {
    let w = rtosunit_suite::bench::workloads::by_name(workload).expect("workload");
    let r = run_workload(kind, preset, &w);
    let s = r.stats().expect("switches recorded");
    (s.mean, s.jitter(), s.count)
}

#[test]
fn slt_reduces_mean_latency_by_more_than_half_on_every_core() {
    // Abstract: "up to 76 % reduction in mean context-switch latency";
    // §6.1: (SLT) minimises latency and jitter on all cores.
    for kind in CoreKind::ALL {
        let (vanilla, _, _) = mean_latency(kind, Preset::Vanilla, "roundrobin_yield");
        let (slt, _, _) = mean_latency(kind, Preset::Slt, "roundrobin_yield");
        assert!(
            slt < vanilla * 0.5,
            "{kind}: SLT {slt:.0} should be <50% of vanilla {vanilla:.0}"
        );
    }
}

#[test]
fn split_achieves_the_largest_mean_reduction_somewhere() {
    // The 76 % headline comes from preloading; verify SPLIT beats SLT on
    // a preload-friendly workload.
    let (slt, _, _) = mean_latency(CoreKind::Cv32e40p, Preset::Slt, "roundrobin_yield");
    let (split, _, _) = mean_latency(CoreKind::Cv32e40p, Preset::Split, "roundrobin_yield");
    assert!(
        split < slt,
        "SPLIT ({split:.0}) must beat SLT ({slt:.0}) when preloads hit"
    );
}

#[test]
fn hardware_scheduling_slashes_jitter() {
    // §6.1: offloading scheduling alone reduces CV32E40P jitter by >90 %
    // (188 -> 16 cycles). Compare (T) to (vanilla) on the delay-heavy
    // workload that drives scheduler variability.
    let (_, vanilla_jitter, _) =
        mean_latency(CoreKind::Cv32e40p, Preset::Vanilla, "delay_periodic");
    let (_, t_jitter, _) = mean_latency(CoreKind::Cv32e40p, Preset::T, "delay_periodic");
    assert!(
        t_jitter * 4 <= vanilla_jitter,
        "(T) jitter {t_jitter} should be well below vanilla {vanilla_jitter}"
    );
}

#[test]
fn slt_virtually_eliminates_jitter_on_the_deterministic_core() {
    // §6.1/§7: jitter eliminated entirely on CV32E40P with (SLT).
    let (_, jitter, count) = mean_latency(CoreKind::Cv32e40p, Preset::Slt, "delay_periodic");
    assert!(count > 20);
    assert!(
        jitter <= 16,
        "SLT jitter on CV32E40P should be near zero, got {jitter}"
    );
}

#[test]
fn residual_jitter_remains_on_cached_speculative_cores() {
    // §6.1: "the remaining jitter is likely due to micro-architectural
    // features like caches and speculative execution".
    let (_, jitter, _) = mean_latency(CoreKind::NaxRiscv, Preset::Slt, "pingpong_semaphore");
    assert!(
        jitter > 0,
        "NaxRiscv must keep some microarchitectural jitter"
    );
}

#[test]
fn cv32rt_gains_are_modest_compared_to_s() {
    // §6.1: CV32RT -3..-12 % vs our (S) -17..-27 % (CV32E40P/CVA6).
    for kind in [CoreKind::Cv32e40p, CoreKind::Cva6] {
        let (vanilla, _, _) = mean_latency(kind, Preset::Vanilla, "pingpong_semaphore");
        let (cv32rt, _, _) = mean_latency(kind, Preset::Cv32rt, "pingpong_semaphore");
        let (s, _, _) = mean_latency(kind, Preset::S, "pingpong_semaphore");
        assert!(cv32rt < vanilla, "{kind}: CV32RT must still beat vanilla");
        assert!(
            s < cv32rt,
            "{kind}: (S) must beat CV32RT (full save overlapped)"
        );
    }
}

#[test]
fn every_workload_runs_on_every_core_and_preset_smoke() {
    // One cheap smoke pass over the full matrix (reduced cycle budget).
    for kind in CoreKind::ALL {
        for preset in [Preset::Vanilla, Preset::Slt, Preset::Split, Preset::Cv32rt] {
            for w in WORKLOADS {
                let mut short = w;
                short.run_cycles = 120_000;
                let r = run_workload(kind, preset, &short);
                assert!(
                    !r.latencies.is_empty(),
                    "{kind}/{preset}/{}: no switches",
                    w.name
                );
            }
        }
    }
}
