//! System-level integration tests: determinism, instrumentation
//! consistency, and agreement between the analytical models and the
//! simulator.

use rtosunit_suite::asic::{area_report, power_report};
use rtosunit_suite::bench::{run_workload, workloads};
use rtosunit_suite::cores::CoreKind;
use rtosunit_suite::kernel::KernelBuilder;
use rtosunit_suite::unit::{Preset, System};
use rtosunit_suite::wcet::analyze_preset;

#[test]
fn simulation_is_deterministic() {
    // Two identical runs must produce byte-identical switch records —
    // a prerequisite for the zero-jitter claims to be meaningful.
    let run = || {
        let w = workloads::by_name("mutex_workload").expect("exists");
        let mut short = w;
        short.run_cycles = 150_000;
        run_workload(CoreKind::NaxRiscv, Preset::Split, &short).latencies
    };
    assert_eq!(run(), run());
}

#[test]
fn switch_records_are_well_formed() {
    let mut k = KernelBuilder::new(Preset::Sl);
    k.task("a", 4, |t| t.yield_now());
    k.task("b", 4, |t| t.yield_now());
    let image = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cva6, Preset::Sl);
    image.install(&mut sys);
    sys.run(150_000);
    assert!(sys.records().len() > 10);
    let mut last_end = 0;
    for r in sys.records() {
        assert!(
            r.trigger_cycle <= r.entry_cycle,
            "trigger after entry: {r:?}"
        );
        assert!(r.entry_cycle < r.mret_cycle, "entry after mret: {r:?}");
        assert!(r.entry_cycle >= last_end, "overlapping ISR episodes: {r:?}");
        last_end = r.mret_cycle;
    }
}

#[test]
fn wcet_bound_dominates_simulation_for_cached_contexts() {
    // The §6.2 analysis is for CV32E40P; it must dominate the measured
    // maxima of every workload for the configurations it covers.
    for preset in [Preset::Vanilla, Preset::Sl, Preset::St, Preset::Sdlot] {
        let bound = analyze_preset(preset).total_cycles;
        for w in workloads::ALL {
            let mut short = w;
            short.run_cycles = 150_000;
            let r = run_workload(CoreKind::Cv32e40p, preset, &short);
            let max = r.latencies.iter().max().copied().unwrap_or(0);
            assert!(max <= bound, "{preset}/{}: {max} > bound {bound}", w.name);
        }
    }
}

#[test]
fn power_total_orders_with_area_within_a_core() {
    // §6.3: strong area-power correlation. For each core, the most
    // area-hungry configuration must also draw the most power.
    for kind in CoreKind::ALL {
        let mut by_area: Vec<Preset> = Preset::ASIC_SET.to_vec();
        by_area.sort_by(|a, b| {
            area_report(kind, *a)
                .added_um2()
                .partial_cmp(&area_report(kind, *b).added_um2())
                .expect("finite")
        });
        let biggest = *by_area.last().expect("non-empty");
        let smallest = by_area[0];
        let p_big = power_report(kind, biggest).total_mw();
        let p_small = power_report(kind, smallest).total_mw();
        assert!(
            p_big > p_small,
            "{kind}: area-max {biggest} ({p_big:.2} mW) must out-draw {smallest} ({p_small:.2} mW)"
        );
    }
}

#[test]
fn unit_traffic_accounts_for_context_words() {
    // In (SLT) every switch stores and loads exactly 31 words (modulo
    // omissions/warm-up); totals must be consistent with interrupt count.
    let mut k = KernelBuilder::new(Preset::Slt);
    k.task("a", 4, |t| t.yield_now());
    k.task("b", 4, |t| t.yield_now());
    let image = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::Slt);
    image.install(&mut sys);
    sys.run(150_000);
    let u = sys.unit_stats().expect("unit");
    assert_eq!(
        u.store_words,
        u.interrupts * 31,
        "store words per interrupt"
    );
    // Loads may lag stores by at most one in-flight switch at shutdown.
    assert!(u.load_words <= u.store_words);
    assert!(u.store_words - u.load_words <= 31);
}

#[test]
fn hardware_and_software_schedulers_agree_on_order() {
    // The same workload must produce the same task alternation whether
    // the ready lists live in software (vanilla) or hardware (T).
    let run = |preset: Preset| {
        let mut k = KernelBuilder::new(preset);
        k.task("a", 5, |t| {
            t.trace_mark(0xA);
            t.yield_now();
        });
        k.task("b", 5, |t| {
            t.trace_mark(0xB);
            t.yield_now();
        });
        k.task("c", 5, |t| {
            t.trace_mark(0xC);
            t.yield_now();
        });
        let image = k.build().expect("builds");
        let mut sys = System::new(CoreKind::Cv32e40p, preset);
        image.install(&mut sys);
        sys.run(120_000);
        let marks: Vec<u32> = sys
            .platform
            .mmio
            .trace_marks
            .iter()
            .map(|m| m.code)
            .take(30)
            .collect();
        marks
    };
    let sw = run(Preset::Vanilla);
    let hw = run(Preset::T);
    assert!(sw.len() >= 30 && hw.len() >= 30);
    // The ISR lengths differ, so timer preemptions land at different
    // phases and exact traces may diverge; the *scheduling discipline*
    // must match: no task runs twice in a row, and over the window each
    // task gets a fair share.
    for (name, marks) in [("software", &sw), ("hardware", &hw)] {
        for w in marks.windows(2) {
            assert_ne!(w[0], w[1], "{name}: task ran twice in a row: {marks:?}");
        }
        for task in [0xA, 0xB, 0xC] {
            let n = marks.iter().filter(|&&m| m == task).count();
            assert!(
                (8..=12).contains(&n),
                "{name}: unfair share for {task:#x}: {n}/30 ({marks:?})"
            );
        }
    }
}
