//! System-level integration tests: determinism, instrumentation
//! consistency, and agreement between the analytical models and the
//! simulator.

use rtosunit_suite::asic::{area_report, power_report};
use rtosunit_suite::bench::{run_workload, workloads};
use rtosunit_suite::cores::{CoreKind, FaultEvent, FaultKind, FaultPlan};
use rtosunit_suite::isa::{decode, Instr};
use rtosunit_suite::kernel::KernelBuilder;
use rtosunit_suite::unit::{Preset, System};
use rtosunit_suite::wcet::analyze_preset;

#[test]
fn simulation_is_deterministic() {
    // Two identical runs must produce byte-identical switch records —
    // a prerequisite for the zero-jitter claims to be meaningful.
    let run = || {
        let w = workloads::by_name("mutex_workload").expect("exists");
        let mut short = w;
        short.run_cycles = 150_000;
        run_workload(CoreKind::NaxRiscv, Preset::Split, &short).latencies
    };
    assert_eq!(run(), run());
}

#[test]
fn switch_records_are_well_formed() {
    let mut k = KernelBuilder::new(Preset::Sl);
    k.task("a", 4, |t| t.yield_now());
    k.task("b", 4, |t| t.yield_now());
    let image = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cva6, Preset::Sl);
    image.install(&mut sys);
    sys.run(150_000);
    assert!(sys.records().len() > 10);
    let mut last_end = 0;
    for r in sys.records() {
        assert!(
            r.trigger_cycle <= r.entry_cycle,
            "trigger after entry: {r:?}"
        );
        assert!(r.entry_cycle < r.mret_cycle, "entry after mret: {r:?}");
        assert!(r.entry_cycle >= last_end, "overlapping ISR episodes: {r:?}");
        last_end = r.mret_cycle;
    }
}

#[test]
fn wcet_bound_dominates_simulation_for_cached_contexts() {
    // The §6.2 analysis is for CV32E40P; it must dominate the measured
    // maxima of every workload for the configurations it covers.
    for preset in [Preset::Vanilla, Preset::Sl, Preset::St, Preset::Sdlot] {
        let bound = analyze_preset(preset).total_cycles;
        for w in workloads::ALL {
            let mut short = w;
            short.run_cycles = 150_000;
            let r = run_workload(CoreKind::Cv32e40p, preset, &short);
            let max = r.latencies.iter().max().copied().unwrap_or(0);
            assert!(max <= bound, "{preset}/{}: {max} > bound {bound}", w.name);
        }
    }
}

#[test]
fn power_total_orders_with_area_within_a_core() {
    // §6.3: strong area-power correlation. For each core, the most
    // area-hungry configuration must also draw the most power.
    for kind in CoreKind::ALL {
        let mut by_area: Vec<Preset> = Preset::ASIC_SET.to_vec();
        by_area.sort_by(|a, b| {
            area_report(kind, *a)
                .added_um2()
                .partial_cmp(&area_report(kind, *b).added_um2())
                .expect("finite")
        });
        let biggest = *by_area.last().expect("non-empty");
        let smallest = by_area[0];
        let p_big = power_report(kind, biggest).total_mw();
        let p_small = power_report(kind, smallest).total_mw();
        assert!(
            p_big > p_small,
            "{kind}: area-max {biggest} ({p_big:.2} mW) must out-draw {smallest} ({p_small:.2} mW)"
        );
    }
}

#[test]
fn unit_traffic_accounts_for_context_words() {
    // In (SLT) every switch stores and loads exactly 31 words (modulo
    // omissions/warm-up); totals must be consistent with interrupt count.
    let mut k = KernelBuilder::new(Preset::Slt);
    k.task("a", 4, |t| t.yield_now());
    k.task("b", 4, |t| t.yield_now());
    let image = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::Slt);
    image.install(&mut sys);
    sys.run(150_000);
    let u = sys.unit_stats().expect("unit");
    assert_eq!(
        u.store_words,
        u.interrupts * 31,
        "store words per interrupt"
    );
    // Loads may lag stores by at most one in-flight switch at shutdown.
    assert!(u.load_words <= u.store_words);
    assert!(u.store_words - u.load_words <= 31);
}

#[test]
fn hardware_and_software_schedulers_agree_on_order() {
    // The same workload must produce the same task alternation whether
    // the ready lists live in software (vanilla) or hardware (T).
    let run = |preset: Preset| {
        let mut k = KernelBuilder::new(preset);
        k.task("a", 5, |t| {
            t.trace_mark(0xA);
            t.yield_now();
        });
        k.task("b", 5, |t| {
            t.trace_mark(0xB);
            t.yield_now();
        });
        k.task("c", 5, |t| {
            t.trace_mark(0xC);
            t.yield_now();
        });
        let image = k.build().expect("builds");
        let mut sys = System::new(CoreKind::Cv32e40p, preset);
        image.install(&mut sys);
        sys.run(120_000);
        let marks: Vec<u32> = sys
            .platform
            .mmio
            .trace_marks
            .iter()
            .map(|m| m.code)
            .take(30)
            .collect();
        marks
    };
    let sw = run(Preset::Vanilla);
    let hw = run(Preset::T);
    assert!(sw.len() >= 30 && hw.len() >= 30);
    // The ISR lengths differ, so timer preemptions land at different
    // phases and exact traces may diverge; the *scheduling discipline*
    // must match: no task runs twice in a row, and over the window each
    // task gets a fair share.
    for (name, marks) in [("software", &sw), ("hardware", &hw)] {
        for w in marks.windows(2) {
            assert_ne!(w[0], w[1], "{name}: task ran twice in a row: {marks:?}");
        }
        for task in [0xA, 0xB, 0xC] {
            let n = marks.iter().filter(|&&m| m == task).count();
            assert!(
                (8..=12).contains(&n),
                "{name}: unfair share for {task:#x}: {n}/30 ({marks:?})"
            );
        }
    }
}

#[test]
fn imem_flip_fault_invalidates_live_translated_blocks() {
    // A fault-injected instruction-memory bit flip lands in the middle of
    // a run while the block translation cache holds a live block covering
    // that word. The coherent imem-write path must kill the stale
    // translation, so the blocks-enabled batched run stays bit-identical
    // to the per-cycle interpreter seeing the same flip.
    let w = workloads::by_name("delay_periodic").expect("exists");
    let core = CoreKind::Cv32e40p;
    let preset = Preset::Slt;

    // Scout run with the cache on and no fault: pick the hottest profiled
    // block that the cache actually translated — its entry word is
    // guaranteed to be covered by a live block again in the real runs.
    // Restrict to entries whose flipped word still decodes to a plain ALU
    // op: the corrupted guest computes garbage (which both runs must agree
    // on) but never dereferences a wild pointer or jumps out of IMEM.
    let flip_addr = {
        let image = workloads::build(&w, preset).expect("builds");
        let mut sys = System::new(core, preset);
        image.install(&mut sys);
        sys.set_profiling(true);
        sys.set_block_cache(true);
        sys.run(w.run_cycles);
        let profile = sys.take_profile().expect("profiling was enabled");
        let hot = sys.core.hot_blocks(&profile);
        hot.iter()
            .find(|b| {
                let flipped = sys.core.imem_word(b.start).expect("hot block in imem") ^ (1 << 7);
                sys.block_stats_in(b.start, b.end).builds > 0
                    && matches!(
                        decode(flipped),
                        Ok(Instr::Op { .. }
                            | Instr::OpImm { .. }
                            | Instr::Lui { .. }
                            | Instr::Auipc { .. })
                    )
            })
            .expect("some hot translated block survives the flip benignly")
            .start
    };

    let run = |blocks: bool| {
        let image = workloads::build(&w, preset).expect("builds");
        let mut sys = System::new(core, preset);
        image.install(&mut sys);
        sys.set_profiling(true);
        sys.set_block_cache(blocks);
        sys.attach_fault_plan(FaultPlan::new(vec![FaultEvent {
            at_cycle: w.run_cycles / 2,
            kind: FaultKind::ImemFlip {
                addr: flip_addr,
                bit: 7,
            },
        }]));
        if blocks {
            sys.run(w.run_cycles);
        } else {
            sys.run_stepwise(w.run_cycles);
        }
        sys
    };
    let mut fast = run(true);
    let mut slow = run(false);
    assert_eq!(fast.faults_applied(), 1, "flip never fired");
    assert_eq!(slow.faults_applied(), 1, "flip never fired");
    assert_eq!(
        fast.take_profile(),
        slow.take_profile(),
        "profiles diverged"
    );
    assert_eq!(fast.records(), slow.records(), "switch episodes diverged");
    assert_eq!(
        fast.platform.cycle(),
        slow.platform.cycle(),
        "cycles diverged"
    );
    assert_eq!(fast.core.retired(), slow.core.retired(), "retires diverged");
    assert_eq!(
        fast.core.counters().without_block_stats(),
        slow.core.counters().without_block_stats(),
        "activity counters diverged"
    );
    assert!(fast.core.counters().block_hits > 0, "cache never engaged");
    // The killed translation was rebuilt (now decoding the flipped word)
    // when the guest next reached it.
    let stats = fast.block_stats_in(flip_addr, flip_addr);
    assert!(
        stats.retranslations() >= 1,
        "no retranslation after the flip: {stats:?}"
    );
}
