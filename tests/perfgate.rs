//! Performance-regression gate (DESIGN.md §11): re-runs the quick
//! tail-latency campaign and diffs every deterministic metric — means,
//! maxima, the full percentile ladder and SLO miss rates — against the
//! committed baseline in `ci/perf_baseline.json` with **zero**
//! tolerance. All of those metrics are simulated-cycle figures, so any
//! delta is a behavioural change in the simulator, not host noise.
//!
//! When a change is intentional, regenerate the baseline:
//! `cargo run --release -p rtosunit-bench --bin fig_tail -- --quick`
//! then copy `results/fig_tail_quick.json` over the baseline file.

use rtosunit_suite::bench::json::Json;
use rtosunit_suite::bench::perfdiff::{compare, DiffOptions};
use rtosunit_suite::bench::tail::tail_spec;

#[test]
fn quick_tail_campaign_matches_the_committed_baseline() {
    let baseline_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/ci/perf_baseline.json"
    ))
    .expect("committed baseline exists");
    let baseline = Json::parse(&baseline_text).expect("baseline parses");

    let current = tail_spec(true).run(1).to_json();

    let opts = DiffOptions {
        tolerance: 0.0,
        check_throughput: false,
        relative: false,
    };
    let report = compare(&baseline, &current, &opts).expect("artifacts are comparable");
    assert!(
        !report.deltas.is_empty(),
        "the gate must actually compare metrics"
    );
    assert!(
        report.passed(),
        "deterministic metrics drifted from ci/perf_baseline.json:\n{}",
        report.human()
    );
}
