//! Tier-1 verification gates (DESIGN.md §9), run from the root suite so
//! plain `cargo test` enforces them:
//!
//! * every timing engine executes ≥ 10 000 random instructions in
//!   lockstep with the golden architectural executor;
//! * every ISR variant survives 1 000 randomized kernel schedules
//!   checked event-by-event against the host-side scheduler oracle;
//! * 500 randomized *multi-core* schedules pass the per-hart oracle plus
//!   the IPI conservation check (no cross-core wakeup lost);
//! * the single-core campaign artifact is byte-identical to the
//!   pre-SMP-refactor baseline (pinned digest).
//!
//! Seeds are fixed, so all gates are deterministic; failure messages
//! name the seed for replay via the `checkfuzz` bin.

use rtosunit_suite::bench::campaign::{CampaignSpec, RunSpec, WorkloadSpec};
use rtosunit_suite::bench::workloads;
use rtosunit_suite::check::{
    episode_for_seed, run_episode, run_scenario, run_smp_scenario, scenario_for_seed,
    smp_scenario_for_seed, OracleStats, ORACLE_PRESETS,
};
use rtosunit_suite::cores::CoreKind;
use rtosunit_suite::isa::progen::GenConfig;
use rtosunit_suite::unit::Preset;

#[test]
fn lockstep_ten_thousand_random_instructions_per_engine() {
    let cfg = GenConfig {
        len: 256,
        ..GenConfig::default()
    };
    for core in CoreKind::ALL {
        let mut retired = 0u64;
        let mut seed = 0u64;
        while retired < 10_000 {
            assert!(
                seed < 64,
                "{core}: seed budget exhausted at {retired} retires"
            );
            let ep = episode_for_seed(core, seed, cfg);
            let stats = run_episode(&ep).unwrap_or_else(|m| panic!("{core} seed {seed}: {m}"));
            retired += stats.retired;
            seed += 1;
        }
    }
}

#[test]
fn lockstep_ten_thousand_random_instructions_per_engine_with_blocks() {
    // The same gate a second time with the block translation cache
    // enabled: the engine executes through batched translated blocks and
    // must still match the golden executor at every batch boundary.
    let cfg = GenConfig {
        len: 256,
        ..GenConfig::default()
    };
    for core in CoreKind::ALL {
        let mut retired = 0u64;
        let mut block_hits = 0u64;
        let mut seed = 0u64;
        while retired < 10_000 {
            assert!(
                seed < 64,
                "{core}: seed budget exhausted at {retired} retires"
            );
            let mut ep = episode_for_seed(core, seed, cfg);
            ep.blocks = true;
            let stats =
                run_episode(&ep).unwrap_or_else(|m| panic!("{core} seed {seed} (blocks): {m}"));
            retired += stats.retired;
            block_hits += stats.block_hits;
            seed += 1;
        }
        assert!(block_hits > 0, "{core}: block cache never engaged");
    }
}

#[test]
fn oracle_thousand_schedules_per_isr_variant() {
    for preset in ORACLE_PRESETS {
        let mut total = OracleStats::default();
        for seed in 0..1_000u64 {
            let core = CoreKind::ALL[(seed % 3) as usize];
            let spec = scenario_for_seed(core, preset, seed);
            let stats = run_scenario(&spec)
                .unwrap_or_else(|v| panic!("{preset} core={core} seed={seed}: {v}"));
            total.merge(&stats);
        }
        // The gate is only meaningful if the schedules actually exercised
        // the kernel: thousands of checked scheduling decisions and every
        // probe kind observed.
        assert!(total.scheds > 10_000, "{preset}: scheds {}", total.scheds);
        assert!(total.task_marks > 10_000, "{preset}: few marks");
        assert!(total.takes_ok > 100, "{preset}: few takes");
        assert!(total.takes_blocked > 100, "{preset}: few blocking takes");
        assert!(total.gives > 100, "{preset}: few gives");
        assert!(total.isr_gives > 10, "{preset}: few ISR gives");
        assert!(total.delays > 100, "{preset}: few delays");
    }
}

#[test]
fn oracle_five_hundred_multicore_schedules() {
    // 300 two-hart plus 200 four-hart schedules, rotating every timing
    // engine and every ISR variant. Each schedule replays every hart's
    // trace against its own model AND checks IPI conservation: every
    // send matched by a drain or still visibly queued — a lost
    // cross-core wakeup fails the gate.
    let mut total = OracleStats::default();
    for seed in 0..500u64 {
        let harts = if seed < 300 { 2 } else { 4 };
        let core = CoreKind::ALL[(seed % 3) as usize];
        let preset = ORACLE_PRESETS[(seed % ORACLE_PRESETS.len() as u64) as usize];
        let spec = smp_scenario_for_seed(core, preset, harts, seed);
        let stats = run_smp_scenario(&spec)
            .unwrap_or_else(|v| panic!("{preset} core={core} harts={harts} seed={seed}: {v}"));
        total.merge(&stats);
    }
    // The gate must have exercised the cross-core path, not just n
    // independent kernels: thousands of scheduling decisions and a
    // healthy population of IPIs drained into deferred gives.
    assert!(total.scheds > 5_000, "scheds {}", total.scheds);
    assert!(total.ipi_sends > 500, "ipi_sends {}", total.ipi_sends);
    assert!(total.ipi_recvs > 500, "ipi_recvs {}", total.ipi_recvs);
    assert!(
        total.isr_gives >= total.ipi_recvs,
        "every drained IPI defers a give"
    );
    assert!(
        total.takes_blocked > 100,
        "takes_blocked {}",
        total.takes_blocked
    );
}

/// FNV-1a, the digest the pre-refactor baseline was pinned with.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn single_core_campaign_artifact_is_byte_identical_to_pre_smp_baseline() {
    // Pinned on the commit immediately before the CpuCore/SMP refactor:
    // the rendered campaign JSON for this fixed matrix hashed to the
    // value below. Single-core users must see bit-for-bit identical
    // measurements and artifacts after the refactor — a drift here means
    // the SMP plumbing leaked into the classic path (e.g. an extra JSON
    // key, a changed timing) and must be fixed, not re-pinned.
    let w = workloads::by_name("pingpong_semaphore").expect("suite workload exists");
    let mut spec = CampaignSpec::new("smp_equiv");
    for core in CoreKind::ALL {
        for preset in [Preset::Vanilla, Preset::Slt] {
            spec.runs
                .push(RunSpec::new(core, preset, WorkloadSpec::Suite(w)));
        }
    }
    let rendered = spec.run(4).to_json().render();
    assert_eq!(rendered.len(), 35753, "artifact length drifted");
    assert_eq!(
        fnv1a(rendered.as_bytes()),
        0xa270_a007_f9dc_103d,
        "artifact bytes drifted from the pre-refactor baseline"
    );
}

#[test]
fn block_cache_campaign_artifact_matches_the_pinned_baseline() {
    // The same fixed matrix with the block translation cache enabled on
    // every run must hash to the very same pre-refactor pin: the cache is
    // host-side execution speed only, invisible in every measured cycle,
    // every counter and every byte of the rendered artifact.
    let w = workloads::by_name("pingpong_semaphore").expect("suite workload exists");
    let mut spec = CampaignSpec::new("smp_equiv");
    for core in CoreKind::ALL {
        for preset in [Preset::Vanilla, Preset::Slt] {
            spec.runs
                .push(RunSpec::new(core, preset, WorkloadSpec::Suite(w)).with_blocks());
        }
    }
    let rendered = spec.run(4).to_json().render();
    assert_eq!(rendered.len(), 35753, "artifact length drifted");
    assert_eq!(
        fnv1a(rendered.as_bytes()),
        0xa270_a007_f9dc_103d,
        "block-cache artifact drifted from the pre-refactor baseline"
    );
}

#[test]
fn warm_started_campaign_artifact_matches_the_pinned_baseline() {
    // The same fixed matrix warm-started from per-cell boot snapshots:
    // every run boots once to cycle 10 000, snapshots, and forks the
    // measured run from the snapshot instead of re-simulating the boot
    // prefix. The artifact must hash to the very same pre-refactor pin —
    // warm start is an execution shortcut, not a measurement change, so
    // every latency row, counter and byte stays identical.
    let w = workloads::by_name("pingpong_semaphore").expect("suite workload exists");
    let mut spec = CampaignSpec::new("smp_equiv");
    for core in CoreKind::ALL {
        for preset in [Preset::Vanilla, Preset::Slt] {
            let run = RunSpec::new(core, preset, WorkloadSpec::Suite(w));
            let boot = run.boot_snapshot(10_000).expect("boot prefix simulates");
            spec.runs
                .push(run.from_snapshot(&boot).expect("fork from boot snapshot"));
        }
    }
    let rendered = spec.run(4).to_json().render();
    assert_eq!(rendered.len(), 35753, "artifact length drifted");
    assert_eq!(
        fnv1a(rendered.as_bytes()),
        0xa270_a007_f9dc_103d,
        "warm-started artifact drifted from the cold-boot baseline"
    );
}
