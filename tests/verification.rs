//! Tier-1 verification gates (DESIGN.md §9), run from the root suite so
//! plain `cargo test` enforces them:
//!
//! * every timing engine executes ≥ 10 000 random instructions in
//!   lockstep with the golden architectural executor;
//! * every ISR variant survives 1 000 randomized kernel schedules
//!   checked event-by-event against the host-side scheduler oracle.
//!
//! Seeds are fixed, so both gates are deterministic; failure messages
//! name the seed for replay via the `checkfuzz` bin.

use rtosunit_suite::check::{
    episode_for_seed, run_episode, run_scenario, scenario_for_seed, OracleStats, ORACLE_PRESETS,
};
use rtosunit_suite::cores::CoreKind;
use rtosunit_suite::isa::progen::GenConfig;

#[test]
fn lockstep_ten_thousand_random_instructions_per_engine() {
    let cfg = GenConfig {
        len: 256,
        ..GenConfig::default()
    };
    for core in CoreKind::ALL {
        let mut retired = 0u64;
        let mut seed = 0u64;
        while retired < 10_000 {
            assert!(
                seed < 64,
                "{core}: seed budget exhausted at {retired} retires"
            );
            let ep = episode_for_seed(core, seed, cfg);
            let stats = run_episode(&ep).unwrap_or_else(|m| panic!("{core} seed {seed}: {m}"));
            retired += stats.retired;
            seed += 1;
        }
    }
}

#[test]
fn oracle_thousand_schedules_per_isr_variant() {
    for preset in ORACLE_PRESETS {
        let mut total = OracleStats::default();
        for seed in 0..1_000u64 {
            let core = CoreKind::ALL[(seed % 3) as usize];
            let spec = scenario_for_seed(core, preset, seed);
            let stats = run_scenario(&spec)
                .unwrap_or_else(|v| panic!("{preset} core={core} seed={seed}: {v}"));
            total.scheds += stats.scheds;
            total.task_marks += stats.task_marks;
            total.takes_ok += stats.takes_ok;
            total.takes_blocked += stats.takes_blocked;
            total.gives += stats.gives;
            total.isr_gives += stats.isr_gives;
            total.delays += stats.delays;
            total.ticks += stats.ticks;
        }
        // The gate is only meaningful if the schedules actually exercised
        // the kernel: thousands of checked scheduling decisions and every
        // probe kind observed.
        assert!(total.scheds > 10_000, "{preset}: scheds {}", total.scheds);
        assert!(total.task_marks > 10_000, "{preset}: few marks");
        assert!(total.takes_ok > 100, "{preset}: few takes");
        assert!(total.takes_blocked > 100, "{preset}: few blocking takes");
        assert!(total.gives > 100, "{preset}: few gives");
        assert!(total.isr_gives > 10, "{preset}: few ISR gives");
        assert!(total.delays > 100, "{preset}: few delays");
    }
}
